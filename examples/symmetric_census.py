#!/usr/bin/env python3
"""Symmetric databases: lifted FO² inference at scale (Sec. 8).

A "census" scenario: a population of n people, each smokes with probability
0.3; any ordered pair are friends with probability 0.1. Every tuple of a
relation has the same probability — a *symmetric* database — so FO² queries
are answerable in time polynomial in n (Theorem 8.1), even queries that are
#P-hard on asymmetric databases (like H0, Theorem 2.2).

Run:  python examples/symmetric_census.py
"""

import time

from repro.logic.parser import parse
from repro.symmetric.evaluate import symmetric_probability
from repro.symmetric.h0 import h0_symmetric_probability
from repro.symmetric.symmetric_db import SymmetricDatabase


def main() -> None:
    queries = {
        "everyone has a friend": "forall x. exists y. Friends(x,y)",
        "some smoker befriends a non-smoker": (
            "exists x. exists y. (Smokes(x) & Friends(x,y) & ~Smokes(y))"
        ),
        "friendship is symmetric": (
            "forall x. forall y. (Friends(x,y) -> Friends(y,x))"
        ),
        "smokers only befriend smokers": (
            "forall x. forall y. ((Smokes(x) & Friends(x,y)) -> Smokes(y))"
        ),
    }

    print("Symmetric census: P(Smokes) = 0.3, P(Friends) = 0.1")
    print(f"{'n':>4s}  " + "  ".join(f"{k[:24]:>26s}" for k in queries))
    for n in (2, 5, 10, 20):
        db = SymmetricDatabase(n)
        db.add_relation("Smokes", 1, 0.3)
        db.add_relation("Friends", 2, 0.1)
        row = []
        for text in queries.values():
            row.append(symmetric_probability(parse(text), db))
        print(f"{n:>4d}  " + "  ".join(f"{v:>26.6g}" for v in row))
    print()

    # --- brute-force validation at n = 2 -------------------------------------
    db = SymmetricDatabase(2)
    db.add_relation("Smokes", 1, 0.3)
    db.add_relation("Friends", 2, 0.1)
    print("validation against possible-world enumeration (n = 2):")
    for label, text in queries.items():
        sentence = parse(text)
        fast = symmetric_probability(sentence, db)
        slow = db.to_tid().brute_force_probability(sentence)
        print(f"  {label:36s} {fast:.6f} vs {slow:.6f} "
              f"({'ok' if abs(fast - slow) < 1e-9 else 'MISMATCH'})")
    print()

    # --- H0: #P-hard in general, polynomial here (Sec. 8) ---------------------
    print("H0 = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y)) on symmetric databases:")
    for n in (10, 50, 150):
        start = time.perf_counter()
        value = h0_symmetric_probability(n, 0.3, 0.9, 0.4)
        elapsed = time.perf_counter() - start
        print(f"  n={n:4d}: p = {value:.6g}   ({elapsed * 1000:.2f} ms)")
    print("  (closed form; the generic FO² WFOMC engine gives identical "
          "values — see tests/test_symmetric.py)")


if __name__ == "__main__":
    main()
