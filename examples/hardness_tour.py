#!/usr/bin/env python3
"""A guided tour of the dichotomy (Sec. 4–7).

Walks through the paper's query gallery, showing for each query:
its dichotomy side (decided from syntax alone), which lifted rules fire,
and — for hard queries — how grounded inference cost explodes while the
extensional bounds of Theorem 6.1 stay cheap.

Run:  python examples/hardness_tour.py
"""

import time

from repro.lifted.engine import LiftedEngine
from repro.lifted.errors import NonLiftableError
from repro.lifted.safety import decide_safety
from repro.lineage.build import lineage_of_cq
from repro.logic.cq import parse_cq, parse_ucq
from repro.plans.bounds import extensional_bounds
from repro.wmc.dpll import compile_decision_dnnf
from repro.workloads.generators import full_tid

GALLERY = [
    ("R(x), S(x,y)", "hierarchical → safe (Thm 4.3)"),
    ("R(x), S(x,y), U(x)", "hierarchical → safe"),
    ("R(x), S(x,y), T(y)", "H0's CQ: non-hierarchical → #P-hard (Thm 2.2)"),
    ("R(x,y), R(y,z)", "hierarchical but self-join → #P-hard (Sec. 4)"),
    ("R(x), S(x,y) | T(u), S(u,v)", "Q_J: needs inclusion/exclusion (Sec. 5)"),
    ("R(x), S(x,y) | S(u,v), T(v)", "H1: inversion → #P-hard"),
]


def main() -> None:
    print("=== The dichotomy, decided from syntax alone ===")
    for text, comment in GALLERY:
        query = parse_ucq(text) if "|" in text else parse_cq(text)
        verdict = decide_safety(query)
        print(f"  {text:34s} {verdict.complexity.value:9s}  # {comment}")
    print()

    db = full_tid(3, 3, schema=(("R", 1), ("S", 2), ("T", 1), ("U", 1)))

    print("=== Lifted derivations (rule traces) ===")
    for text in ("R(x), S(x,y)", "R(x), S(x,y) | T(u), S(u,v)"):
        query = parse_ucq(text) if "|" in text else parse_cq(text)
        engine = LiftedEngine(db, record_trace=True)
        try:
            p = engine.probability(query)
        except NonLiftableError as error:
            print(f"  {text}: NOT LIFTABLE ({error.subquery})")
            continue
        rules = {}
        for step in engine.trace:
            rules[step.rule] = rules.get(step.rule, 0) + 1
        print(f"  {text}: p = {p:.6f} rules = {rules}")
    print()

    print("=== Grounded inference cost for the hard query H0-CQ ===")
    print(f"{'n':>3s} {'lineage vars':>13s} {'dec-DNNF size':>14s} {'time':>9s}")
    for n in (2, 3, 4, 5):
        dbn = full_tid(7, n)
        lineage = lineage_of_cq(parse_cq("R(x), S(x,y), T(y)"), dbn)
        start = time.perf_counter()
        result = compile_decision_dnnf(lineage.expr, lineage.probabilities())
        elapsed = time.perf_counter() - start
        print(
            f"{n:>3d} {lineage.variable_count:>13d} "
            f"{result.trace_size:>14d} {elapsed:>8.2f}s"
        )
    print()

    print("=== Theorem 6.1: extensional bounds for H0-CQ (cheap) ===")
    hard = parse_cq("R(x), S(x,y), T(y)")
    for n in (3, 5, 8):
        dbn = full_tid(7, n)
        start = time.perf_counter()
        bounds = extensional_bounds(hard, dbn)
        elapsed = time.perf_counter() - start
        print(
            f"  n={n}: p ∈ [{bounds.lower:.6f}, {bounds.upper:.6f}] "
            f"(width {bounds.width:.4f}, {elapsed * 1000:.1f} ms, "
            f"{bounds.plan_count} plans)"
        )


if __name__ == "__main__":
    main()
