#!/usr/bin/env python3
"""Data-cleaning / deduplication scenario (the paper's motivating apps).

A customer table was merged from two noisy sources. Each extracted record is
kept with a confidence score — a tuple-independent database. We then ask
analytics questions whose answers are probabilities, and use the Theorem 6.1
bounds when a query is #P-hard.

Run:  python examples/data_cleaning.py
"""

from repro import Method, ProbabilisticDatabase
from repro.logic.cq import parse_cq
from repro.plans.bounds import extensional_bounds


def build_database() -> ProbabilisticDatabase:
    pdb = ProbabilisticDatabase(seed=1)
    # Customer(name) with extraction confidence.
    customers = {
        "alice": 0.98,
        "a1ice": 0.15,  # likely an OCR duplicate of alice
        "bob": 0.9,
        "carol": 0.75,
    }
    for name, confidence in customers.items():
        pdb.add_fact("Customer", (name,), confidence)

    # Order(name, sku): dirty join table from two sources.
    orders = {
        ("alice", "laptop"): 0.9,
        ("alice", "mouse"): 0.7,
        ("a1ice", "laptop"): 0.2,
        ("bob", "monitor"): 0.85,
        ("carol", "laptop"): 0.6,
        ("carol", "keyboard"): 0.5,
    }
    for key, confidence in orders.items():
        pdb.add_fact("Order", key, confidence)

    # Discontinued(sku): catalogue metadata, also uncertain.
    for sku, confidence in {"laptop": 0.3, "keyboard": 0.8}.items():
        pdb.add_fact("Discontinued", (sku,), confidence)
    return pdb


def main() -> None:
    pdb = build_database()

    # --- per-customer marginals: which customers have any order? -----------
    print("P(customer exists ∧ has an order):")
    for (name,), answer in pdb.answers(
        "Customer(x), Order(x, y)", ["x"]
    ).items():
        print(f"  {name:8s} {answer.probability:.4f}")
    print()

    # --- a safe Boolean query ----------------------------------------------
    some_order = pdb.probability("Customer(x), Order(x,y)")
    print(
        f"P(at least one confirmed customer ordered) = "
        f"{some_order.probability:.6f}  [{some_order.method.value}]"
    )
    print()

    # --- a #P-hard pattern: customer ordered a discontinued product --------
    hard = "Customer(x), Order(x,y), Discontinued(y)"
    answer = pdb.probability(hard)
    print(f"P(someone ordered a discontinued product) = "
          f"{answer.probability:.6f}  [{answer.method.value}]")

    # Theorem 6.1: plan-based bounds, no exponential work needed.
    bounds = extensional_bounds(parse_cq(hard), pdb.tid)
    print(
        f"  extensional sandwich: [{bounds.lower:.6f}, {bounds.upper:.6f}] "
        f"from {bounds.plan_count} plans (width {bounds.width:.4f})"
    )
    assert bounds.contains(answer.probability)
    print("  exact value lies inside the bounds — Theorem 6.1 holds.")
    print()

    # --- cleaning decision: is 'a1ice' worth keeping? -----------------------
    # Expected number of real customers = sum of marginals.
    expected = sum(
        prob for name, values, prob in pdb.tid.facts() if name == "Customer"
    )
    print(f"Expected #customers: {expected:.2f} "
          "(the low-confidence duplicate contributes little)")

    # Conditioning on a functional-dependency-style constraint would be the
    # next step (see examples/knowledge_base.py for constraints).
    mc = pdb.probability(hard, Method.MONTE_CARLO)
    print(f"Monte-Carlo cross-check: {mc.probability:.4f} ({mc.detail})")


if __name__ == "__main__":
    main()
