"""E15 — the hash-consed Boolean kernel vs the legacy tuple-key path.

The kernel (`repro.booleans.kernel`) interns every Boolean node, caches
per-node variable sets, and memoizes cofactors process-wide. This benchmark
quantifies the win on the two grounded workloads that exercise it hardest:

* **repeated-cofactor DPLL counting** (the E2 hardness workload, re-counted
  under drifting tuple probabilities as a serving engine would): the
  interned counter keys its cache on int node ids and reuses memoized
  Shannon cofactors, while the *legacy* path — a faithful replica of the
  pre-kernel implementation, kept here as the baseline — hashes O(|subtree|)
  structural tuples and rebuilds every cofactor from scratch. Asserted:
  **≥ 3× speedup**, probabilities equal to full float precision.
* **repeated OBDD compilation** (the E8 workload under repeat traffic): the
  manager's `from_expr` memo keyed by interned node id makes recompiling a
  formula it has seen O(1).

A third table shows allocation behaviour: re-grounding the same query
allocates **zero** new nodes — every construction is served by the unique
table, which is the "lower peak node allocations" claim made concrete.

Run directly for tables (``--quick`` for the CI smoke variant), or via
pytest for the assertions.
"""

import argparse
import time

from repro.booleans.expr import (
    B_FALSE,
    B_TRUE,
    BAnd,
    BExpr,
    BFalse,
    BNot,
    BOr,
    BTrue,
    BVar,
    bnot,
)
from repro.booleans.kernel import kernel_statistics, reset_kernel
from repro.kc.obdd import FALSE_NODE, TRUE_NODE, OBDD
from repro.lineage.build import lineage_of_cq
from repro.logic.cq import parse_cq
from repro.wmc.dpll import DPLLCounter
from repro.workloads.generators import full_tid

from tables import print_table

H0_CQ = parse_cq("R(x), S(x,y), T(y)")

#: Machine-readable results of the last ``main()`` run, merged into
#: ``BENCH_results.json`` by ``run_all_tables.py``.
BENCH_RESULTS: dict = {}


# -- the legacy (pre-kernel) path, replicated faithfully ----------------------
#
# These reproduce the seed implementations' behaviour: conditioning rebuilds
# every subtree with a memo keyed by nested structural tuples, variable sets
# and branching frequencies are recomputed by walking, and the DPLL cache
# hashes full structural keys. The smart constructors are shared, so both
# paths canonicalize identically and must agree bit-for-bit.


def legacy_condition(expr: BExpr, assignment: dict) -> BExpr:
    memo: dict[tuple, BExpr] = {}

    def walk(node: BExpr) -> BExpr:
        key = node.key()
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(node, (BTrue, BFalse)):
            result: BExpr = node
        elif isinstance(node, BVar):
            if node.index in assignment:
                result = B_TRUE if assignment[node.index] else B_FALSE
            else:
                result = node
        elif isinstance(node, BNot):
            result = bnot(walk(node.sub))
        elif isinstance(node, BAnd):
            result = BAnd.of(walk(p) for p in node.parts)
        else:
            result = BOr.of(walk(p) for p in node.parts)
        memo[key] = result
        return result

    return walk(expr)


def legacy_variables(expr: BExpr) -> frozenset:
    out = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BVar):
            out.add(node.index)
        else:
            stack.extend(node.children())
    return frozenset(out)


def legacy_independent_factors(expr: BExpr) -> list:
    if not isinstance(expr, (BAnd, BOr)):
        return [expr]
    parts = expr.parts
    part_vars = [legacy_variables(p) for p in parts]
    n = len(parts)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    index_of_var: dict[int, int] = {}
    for i, pv in enumerate(part_vars):
        for v in pv:
            j = index_of_var.get(v)
            if j is None:
                index_of_var[v] = i
            else:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj

    groups: dict[int, list] = {}
    for i, part in enumerate(parts):
        groups.setdefault(find(i), []).append(part)
    if len(groups) == 1:
        return [expr]
    builder = BAnd.of if isinstance(expr, BAnd) else BOr.of
    return [builder(group) for group in groups.values()]


def legacy_most_frequent_variable(expr: BExpr) -> int:
    counts: dict[int, int] = {}
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BVar):
            counts[node.index] = counts.get(node.index, 0) + 1
        else:
            stack.extend(node.children())
    return max(counts, key=lambda v: (counts[v], -v))


def legacy_dpll(expr: BExpr, probabilities: dict) -> float:
    """The seed DPLL counter: tuple-key cache, rebuild-everything cofactors."""
    cache: dict[tuple, float] = {}

    def count(formula: BExpr) -> float:
        if isinstance(formula, BTrue):
            return 1.0
        if isinstance(formula, BFalse):
            return 0.0
        key = formula.key()
        cached = cache.get(key)
        if cached is not None:
            return cached
        factors = (
            legacy_independent_factors(formula)
            if isinstance(formula, BAnd)
            else [formula]
        )
        if len(factors) > 1:
            probability = 1.0
            for factor in factors:
                probability *= count(factor)
        else:
            var = legacy_most_frequent_variable(formula)
            low = legacy_condition(formula, {var: False})
            high = legacy_condition(formula, {var: True})
            p = probabilities[var]
            probability = (1.0 - p) * count(low) + p * count(high)
        cache[key] = probability
        return probability

    return count(expr)


def legacy_from_expr(manager: OBDD, expr: BExpr) -> int:
    """The seed OBDD compiler: walks the expression on every call."""
    if isinstance(expr, BTrue):
        return TRUE_NODE
    if isinstance(expr, BFalse):
        return FALSE_NODE
    if isinstance(expr, BVar):
        return manager.variable(expr.index)
    if isinstance(expr, BNot):
        return manager.negate(legacy_from_expr(manager, expr.sub))
    if isinstance(expr, BAnd):
        result = TRUE_NODE
        for part in expr.parts:
            result = manager.conjoin(result, legacy_from_expr(manager, part))
            if result == FALSE_NODE:
                return FALSE_NODE
        return result
    result = FALSE_NODE
    for part in expr.parts:
        result = manager.disjoin(result, legacy_from_expr(manager, part))
        if result == TRUE_NODE:
            return TRUE_NODE
    return result


# -- workloads ----------------------------------------------------------------


def _drifting_maps(base: dict, rounds: int) -> list[dict]:
    """Tuple probabilities drifting over *rounds* serving ticks."""
    return [
        {v: min(0.95, p + 0.01 * r) for v, p in base.items()}
        for r in range(rounds)
    ]


def dpll_speedup(domain_size: int = 4, rounds: int = 8):
    """Repeated-cofactor DPLL counting: interned kernel vs legacy tuple keys.

    Returns ``(rows, ratio)``; asserts bit-for-bit agreement internally.
    """
    db = full_tid(11, domain_size)
    lineage = lineage_of_cq(H0_CQ, db)
    maps = _drifting_maps(lineage.probabilities(), rounds)

    before = kernel_statistics()
    start = time.perf_counter()
    interned = [DPLLCounter().run(lineage.expr, m) for m in maps]
    interned_time = time.perf_counter() - start
    after = kernel_statistics()

    start = time.perf_counter()
    legacy = [legacy_dpll(lineage.expr, m) for m in maps]
    legacy_time = time.perf_counter() - start

    assert [r.probability for r in interned] == legacy, (
        "interned kernel changed DPLL probabilities"
    )
    ratio = legacy_time / interned_time if interned_time > 0 else float("inf")
    memo_hits = after.cofactor_hits - before.cofactor_hits
    rows = [
        (
            "legacy (tuple keys, rebuild cofactors)",
            f"{legacy_time:.4f}s",
            "-",
            f"{legacy[0]:.6f}",
        ),
        (
            "interned kernel (nid keys, memo cofactors)",
            f"{interned_time:.4f}s",
            f"{memo_hits}",
            f"{interned[0].probability:.6f}",
        ),
        ("speedup", f"{ratio:.1f}x", "-", "-"),
    ]
    return rows, ratio


def obdd_recompile(domain_size: int = 4, repeats: int = 20):
    """Repeat-traffic OBDD compilation of the same interned lineage."""
    db = full_tid(11, domain_size)
    lineage = lineage_of_cq(H0_CQ, db)
    expr = lineage.expr
    order = tuple(sorted(expr.variables()))

    legacy_manager = OBDD(order)
    start = time.perf_counter()
    for _ in range(repeats):
        legacy_root = legacy_from_expr(legacy_manager, expr)
    legacy_time = time.perf_counter() - start

    interned_manager = OBDD(order)
    start = time.perf_counter()
    for _ in range(repeats):
        interned_root = interned_manager.from_expr(expr)
    interned_time = time.perf_counter() - start

    assert legacy_manager.size(legacy_root) == interned_manager.size(interned_root)
    probabilities = lineage.probabilities()
    assert legacy_manager.wmc(legacy_root, probabilities) == interned_manager.wmc(
        interned_root, probabilities
    )
    ratio = legacy_time / interned_time if interned_time > 0 else float("inf")
    rows = [
        ("legacy from_expr (walk every call)", f"{legacy_time:.4f}s"),
        ("interned from_expr (nid memo)", f"{interned_time:.4f}s"),
        ("speedup", f"{ratio:.1f}x"),
    ]
    return rows, ratio


def allocation_behaviour(domain_size: int = 4):
    """Node allocations when grounding the same query twice.

    ``requested`` counts every node construction the grounding asked for;
    ``allocated`` counts the ones that actually created a new object. The
    second grounding is served entirely by the unique table.

    The kernel is reset first so the numbers reflect a cold start even when
    earlier workloads (or other benchmark modules in a ``run_all_tables``
    pass) already populated the process-wide unique table. Node ids stay
    monotonic across resets, so this cannot alias any live cache entry.
    """
    reset_kernel()
    rows = []
    allocated = []
    for label in ("first grounding", "second grounding"):
        before = kernel_statistics()
        lineage = lineage_of_cq(H0_CQ, full_tid(11, domain_size))
        after = kernel_statistics()
        new_nodes = after.intern_misses - before.intern_misses
        requested = new_nodes + (after.intern_hits - before.intern_hits)
        allocated.append(new_nodes)
        rows.append(
            (label, lineage.variable_count, requested, new_nodes, after.unique_nodes)
        )
    return rows, allocated


# -- assertions (pytest / CI smoke) -------------------------------------------


def test_e15_kernel_speedup_at_least_3x():
    _, ratio = dpll_speedup(domain_size=4, rounds=8)
    assert ratio >= 3.0, f"interned kernel only {ratio:.1f}x faster than legacy path"


def test_e15_obdd_recompile_faster():
    _, ratio = obdd_recompile(domain_size=3, repeats=10)
    assert ratio > 1.0, f"memoized from_expr not faster ({ratio:.1f}x)"


def test_e15_regrounding_allocates_nothing():
    _, allocated = allocation_behaviour(domain_size=3)
    assert allocated[0] > 0, "cold grounding should allocate fresh nodes"
    assert allocated[1] == 0, (
        f"re-grounding allocated {allocated[1]} nodes; unique table should serve all"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller domains for CI smoke runs"
    )
    args = parser.parse_args()
    n = 3 if args.quick else 4
    rounds = 8
    repeats = 10 if args.quick else 20

    rows, ratio = dpll_speedup(domain_size=n, rounds=rounds)
    print_table(
        f"E15a: repeated-cofactor DPLL on H0 (n={n}, {rounds} drifting weight maps)",
        ["path", "time", "cofactor-memo hits", "p (round 0)"],
        rows,
    )
    assert ratio >= 3.0, f"interned kernel only {ratio:.1f}x faster than legacy path"
    BENCH_RESULTS["e15_dpll_kernel_speedup"] = round(ratio, 2)

    rows, _ = obdd_recompile(domain_size=n, repeats=repeats)
    print_table(
        f"E15b: OBDD recompilation of one lineage (n={n}, {repeats} repeats)",
        ["path", "time"],
        rows,
    )

    rows, allocated = allocation_behaviour(domain_size=n)
    print_table(
        f"E15c: node allocations when grounding H0 twice (n={n})",
        ["grounding", "lineage vars", "requested", "allocated", "table size"],
        rows,
    )
    assert allocated[1] == 0, "re-grounding should allocate zero nodes"


if __name__ == "__main__":
    main()
