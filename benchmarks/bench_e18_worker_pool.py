"""E18 — multi-process serving: shard-attached workers vs one process.

The worker pool's scaling story on a cache-bound workload: D distinct
#P-hard queries (the same join pattern under renamed variables, so every
one is a separate cache entry) are driven closed-loop against the server
in ``mode="processes"``. Each worker owns a private LRU sized so that

* **workers=1** — all D queries land on the single worker, whose cache
  cannot hold them (cyclic access over a working set larger than the
  LRU is the classic 0%-hit pathology): every request re-runs DPLL;
* **workers=4** — consistent hashing splits the D queries across four
  workers, each subset *fits* its owner's cache: after one warm-up pass
  every request is a cache hit.

The cache size is computed from the actual routing assignment (the ring
is deterministic over content hashes), so the fit/thrash contrast holds
by construction rather than by luck. Three measurements:

* **throughput scaling** — workers=4 must deliver ≥ 2.5× the rps of
  workers=1 on the same workload (single-CPU machines included: the
  scaling comes from cache partitioning, not core count);
* **tail latency** — p99 stays bounded at 10× oversubscription
  (40 client threads over 4 workers);
* **answer identity** — the pooled server's answers are byte-identical
  to the single-process threads-mode server on every query
  (``elapsed_ms``, ``coalesced``/``id`` and the diagnostic ``detail``
  string excepted — see docs/api.md, "Serving: multi-process mode").

Run directly for tables (``--quick`` for the CI smoke variant), or via
``pytest benchmarks/bench_e18_worker_pool.py`` for the assertions.
"""

import argparse
import json
import threading
import time

from repro.engine.cache import query_fingerprint
from repro.engine.session import EngineSession
from repro.obs import MetricsRegistry
from repro.server import ServerClient, ServerConfig, ServerThread, http_get
from repro.server.pool import _HashRing
from repro.workloads.generators import full_tid

from tables import print_table

#: Distinct renamed copies of the #P-hard join: one cache entry family each.
D = 64

QUERIES = tuple(f"R(x{i}), S(x{i},y{i}), T(y{i})" for i in range(D))

#: Domain size for ``full_tid``: n=6 makes one cold DPLL evaluation ~30ms,
#: two orders of magnitude over a cache hit — the contrast the bench rides.
DOMAIN = 6

SEED = 18
WORKERS = 4
SCALING_FLOOR = 2.5
P99_BUDGET_S = 5.0

#: LRU entries one query occupies (parsed query + lineage + answer).
ENTRIES_PER_QUERY = 3

# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def _database():
    return full_tid(41, DOMAIN)


def worker_cache_size():
    """Size the per-worker LRU from the actual routing assignment.

    Big enough that the busiest worker's query subset fits (plus slack),
    small enough that all D queries cycling through one worker thrash.
    """
    fingerprint = _database().fingerprint()
    ring = _HashRing()
    for worker in range(WORKERS):
        ring.add(worker)
    owned = [0] * WORKERS
    for query in QUERIES:
        owned[ring.route(f"{fingerprint}|{query_fingerprint(query)}")] += 1
    cache = ENTRIES_PER_QUERY * (max(owned) + 4)
    assert cache < ENTRIES_PER_QUERY * D, (
        f"cache {cache} would fit all {D} queries: no thrash at workers=1 "
        f"(assignment {owned})"
    )
    return cache, owned


def _make_server(workers, mode="processes"):
    session = EngineSession(_database(), seed=SEED)
    cache, _ = worker_cache_size()
    config = ServerConfig(
        workers=workers,
        mode=mode,
        worker_cache_size=cache,
        max_pending=4096,
        request_timeout_s=120.0,
    )
    return ServerThread(session, config, registry=MetricsRegistry())


def _warmup(port):
    """One sequential pass over every query: fills caches that can fit."""
    with ServerClient("127.0.0.1", port, timeout_s=120.0) as client:
        for query in QUERIES:
            response = client.query(query, method="dpll")
            assert response.get("ok"), response


def closed_loop(port, clients, requests_each):
    """Drive with *clients* closed-loop threads; return (lat, resp, wall)."""
    latencies = []
    responses = []
    lock = threading.Lock()
    errors = []

    def run_client(index):
        try:
            with ServerClient("127.0.0.1", port, timeout_s=120.0) as client:
                local_lat, local_resp = [], []
                for i in range(requests_each):
                    query = QUERIES[(index + i) % D]
                    start = time.perf_counter()
                    response = client.query(query, method="dpll")
                    local_lat.append(time.perf_counter() - start)
                    local_resp.append(response)
                with lock:
                    latencies.extend(local_lat)
                    responses.extend(local_resp)
        except Exception as error:  # noqa: BLE001 - surfaced to the caller
            with lock:
                errors.append(error)

    threads = [
        threading.Thread(target=run_client, args=(i,)) for i in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return latencies, responses, elapsed


def measure_pool(workers, clients, requests_each):
    """Warm, then measure one pool size; returns throughput + tail stats."""
    with _make_server(workers) as server:
        _warmup(server.port)
        latencies, responses, elapsed = closed_loop(
            server.port, clients, requests_each
        )
        # Scraping /metrics folds the workers' own counters into the
        # front registry (refresh_metrics) so the snapshot sees them.
        http_get("127.0.0.1", server.port, "/metrics")
        snapshot = server.server.registry.snapshot()
    total = clients * requests_each
    assert len(responses) == total
    for response in responses:
        assert response.get("ok"), f"request failed: {response}"
        assert response.get("guarantee"), response
    latencies.sort()
    return {
        "throughput": total / elapsed,
        "elapsed": elapsed,
        "p50": latencies[len(latencies) // 2],
        "p99": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
        "worker_hits": int(
            snapshot.get("server_workers_engine_cache_hits_total", 0)
        ),
        "worker_misses": int(
            snapshot.get("server_workers_engine_cache_misses_total", 0)
        ),
    }


# -- answer identity ----------------------------------------------------------

_ENVELOPE_EXCLUDED = ("elapsed_ms", "coalesced", "id", "detail")


def _strip(response):
    assert response.get("ok"), response
    return json.dumps(
        {k: v for k, v in response.items() if k not in _ENVELOPE_EXCLUDED},
        sort_keys=True,
    ).encode()


def answers_identical(sample_every=8):
    """Pooled answers vs the single-process threads server, byte-for-byte."""
    sample = QUERIES[::sample_every]
    mismatches = []
    with _make_server(2, mode="threads") as reference_server:
        with _make_server(2, mode="processes") as pooled_server:
            with ServerClient(
                "127.0.0.1", reference_server.port, timeout_s=120.0
            ) as reference:
                with ServerClient(
                    "127.0.0.1", pooled_server.port, timeout_s=120.0
                ) as pooled:
                    for query in sample:
                        ours = pooled.query(query, method="dpll")
                        theirs = reference.query(query, method="dpll")
                        if _strip(ours) != _strip(theirs):
                            mismatches.append((query, ours, theirs))
    return len(sample), mismatches


# -- assertions (pytest benchmarks/bench_e18_worker_pool.py) ------------------


def test_e18_pool_scaling():
    one = measure_pool(1, clients=8, requests_each=6)
    four = measure_pool(WORKERS, clients=8, requests_each=6)
    ratio = four["throughput"] / one["throughput"]
    assert ratio >= SCALING_FLOOR, (
        f"workers={WORKERS} scaling {ratio:.2f}× < {SCALING_FLOOR}× "
        f"(1: {one['throughput']:.0f} rps, {WORKERS}: {four['throughput']:.0f} rps)"
    )


def test_e18_bounded_p99_oversubscribed():
    result = measure_pool(WORKERS, clients=10 * WORKERS, requests_each=4)
    assert result["p99"] <= P99_BUDGET_S, (
        f"p99 {result['p99']:.2f}s over budget {P99_BUDGET_S}s "
        f"under {10 * WORKERS} clients / {WORKERS} workers"
    )


def test_e18_answers_identical():
    checked, mismatches = answers_identical(sample_every=16)
    assert checked >= 4
    assert not mismatches, mismatches[0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small instances (CI smoke run)"
    )
    args = parser.parse_args()
    requests_each = 6 if args.quick else 16
    clients = 8
    cache, owned = worker_cache_size()
    print(
        f"D={D} queries over {WORKERS} workers: assignment {owned}, "
        f"per-worker LRU {cache} entries "
        f"(all {D} need {ENTRIES_PER_QUERY * D})"
    )

    one = measure_pool(1, clients, requests_each)
    four = measure_pool(WORKERS, clients, requests_each)
    ratio = four["throughput"] / one["throughput"]
    print_table(
        f"E18a: closed-loop throughput ({clients} clients × {requests_each} "
        f"requests, D={D} distinct queries, domain n={DOMAIN})",
        ["pool", "throughput", "p50", "p99", "worker hits/misses"],
        [
            (
                "1 worker process (cache thrash)",
                f"{one['throughput']:.0f} rps",
                f"{one['p50'] * 1e3:.1f}ms",
                f"{one['p99'] * 1e3:.1f}ms",
                f"{one['worker_hits']}/{one['worker_misses']}",
            ),
            (
                f"{WORKERS} worker processes (caches fit)",
                f"{four['throughput']:.0f} rps",
                f"{four['p50'] * 1e3:.1f}ms",
                f"{four['p99'] * 1e3:.1f}ms",
                f"{four['worker_hits']}/{four['worker_misses']}",
            ),
        ],
    )
    print(f"pool scaling: {ratio:.1f}× (must be ≥ {SCALING_FLOOR}×)")
    assert ratio >= SCALING_FLOOR, (
        f"workers={WORKERS} must scale ≥ {SCALING_FLOOR}×, got {ratio:.2f}×"
    )

    oversub = measure_pool(
        WORKERS, clients=10 * WORKERS, requests_each=2 if args.quick else 4
    )
    print(
        f"p99 under 10× oversubscription ({10 * WORKERS} clients): "
        f"{oversub['p99'] * 1e3:.1f}ms (budget {P99_BUDGET_S:.0f}s)"
    )
    assert oversub["p99"] <= P99_BUDGET_S

    checked, mismatches = answers_identical(sample_every=8)
    print(
        f"answer identity: {checked - len(mismatches)}/{checked} queries "
        f"byte-identical to the threads-mode server"
    )
    assert not mismatches, mismatches[0]

    BENCH_RESULTS.update(
        {
            "pool_scaling_ratio": round(ratio, 2),
            "throughput_rps_workers1": round(one["throughput"], 1),
            f"throughput_rps_workers{WORKERS}": round(four["throughput"], 1),
            "p99_ms_oversubscribed": round(oversub["p99"] * 1e3, 2),
            "answers_byte_identical": not mismatches,
            "worker_cache_entries": cache,
        }
    )


if __name__ == "__main__":
    main()
