"""E16 — columnar vs row-at-a-time execution of extensional safe plans.

The paper's Sec. 6 point is that safe queries run *inside* relational query
processing — so the engine should inherit relational-engine speed. The row
backend (`repro.plans.plan`) is a faithful tuple-at-a-time interpreter; the
columnar backend (`repro.plans.vectorized` over
`repro.relational.columnar`) executes the same plan trees as a handful of
numpy array passes: dictionary-encoded scans, sort/searchsorted joins, and
grouped log-space ⊕-aggregation.

This benchmark builds a ~10⁵-fact tuple-independent database, compiles the
safe plan for ``R(x), S(x,y)`` once, and serves it through both backends:

* **warm** columnar serving (encoded columns memoized per database
  version — the steady state of a query-serving engine) is asserted
  **≥ 10× faster** than the row backend (≥ 3× under ``--quick``);
* the **cold** columnar run (first query against a fresh database, paying
  the one-time dictionary encoding) is reported alongside;
* both backends are asserted to agree within **1e-9 absolute error**.

Run directly for tables (``--quick`` for the CI smoke variant), or via
pytest for the assertions. ``BENCH_RESULTS`` carries the machine-readable
ratios that ``run_all_tables.py`` folds into ``BENCH_results.json``.
"""

import argparse
import random
import time

from repro.core.tid import TupleIndependentDatabase
from repro.logic.cq import parse_cq
from repro.plans.plan import execute_boolean, project_boolean
from repro.plans.safe_plan import safe_plan
from repro.plans.vectorized import available, execute_boolean_columnar

from tables import print_table

QUERY = "R(x), S(x,y)"

#: Machine-readable results of the last ``main()`` run, merged into
#: ``BENCH_results.json`` by ``run_all_tables.py``.
BENCH_RESULTS: dict = {}


def build_database(
    n_keys: int = 2000, n_facts: int = 100_000, seed: int = 20200614
) -> TupleIndependentDatabase:
    """A TID with |R| = *n_keys* and |S| = *n_facts*, deterministic in *seed*."""
    rng = random.Random(seed)
    db = TupleIndependentDatabase()
    db.add_relation("R", ("a0",))
    db.add_relation("S", ("a0", "a1"))
    for i in range(n_keys):
        db.add_fact("R", (f"k{i}",), rng.uniform(0.05, 0.95))
    per_key = n_facts // n_keys
    for i in range(n_keys):
        for j in range(per_key):
            db.add_fact("S", (f"k{i}", f"v{j}"), rng.uniform(0.05, 0.95))
    return db


def serving_comparison(n_keys: int, n_facts: int, rounds: int = 3):
    """Row vs columnar serving of one safe plan; returns (rows, ratio, diff).

    Each backend is timed as the best of *rounds* executions of the same
    compiled plan — the repeat-traffic shape the engine session serves. The
    first columnar round doubles as the cold (encode-paying) measurement.
    """
    db = build_database(n_keys, n_facts)
    plan = project_boolean(safe_plan(parse_cq(QUERY), db))

    row_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        row_probability = execute_boolean(plan, db)
        row_times.append(time.perf_counter() - start)

    columnar_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        columnar_probability = execute_boolean_columnar(plan, db)
        columnar_times.append(time.perf_counter() - start)

    row_time = min(row_times)
    cold_time = columnar_times[0]
    warm_time = min(columnar_times[1:])
    ratio = row_time / warm_time if warm_time > 0 else float("inf")
    diff = abs(row_probability - columnar_probability)

    table = [
        ("rows (tuple-at-a-time)", f"{row_time:.4f}s", f"{row_probability:.6f}"),
        ("columnar, cold (incl. encode)", f"{cold_time:.4f}s", f"{columnar_probability:.6f}"),
        ("columnar, warm (memoized scan)", f"{warm_time:.4f}s", f"{columnar_probability:.6f}"),
        ("speedup (rows / columnar warm)", f"{ratio:.1f}x", "-"),
    ]
    return table, ratio, diff


# -- assertions (pytest / CI smoke) -------------------------------------------


def test_e16_backends_agree_to_1e9():
    if not available():  # pragma: no cover - numpy is a declared dependency
        return
    _, _, diff = serving_comparison(n_keys=200, n_facts=10_000)
    assert diff <= 1e-9, f"backends disagree by {diff:.2e}"


def test_e16_columnar_at_least_10x_on_1e5_rows():
    if not available():  # pragma: no cover - numpy is a declared dependency
        return
    _, ratio, diff = serving_comparison(n_keys=2000, n_facts=100_000)
    assert diff <= 1e-9, f"backends disagree by {diff:.2e}"
    assert ratio >= 10.0, f"columnar only {ratio:.1f}x faster than rows"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller database for CI smoke runs"
    )
    args = parser.parse_args()
    if not available():  # pragma: no cover - numpy is a declared dependency
        print("E16 skipped: numpy not importable, columnar backend unavailable")
        return
    if args.quick:
        n_keys, n_facts, floor = 500, 20_000, 3.0
    else:
        n_keys, n_facts, floor = 2000, 100_000, 10.0

    table, ratio, diff = serving_comparison(n_keys, n_facts)
    print_table(
        f"E16: safe plan for {QUERY} over |R|={n_keys}, |S|={n_facts:,}",
        ["backend", "time (best of 3)", "probability"],
        table,
    )
    print(f"row-vs-columnar |Δp| = {diff:.2e}")
    assert diff <= 1e-9, f"backends disagree by {diff:.2e}"
    assert ratio >= floor, f"columnar only {ratio:.1f}x faster than rows (need {floor}x)"
    BENCH_RESULTS["e16_columnar_speedup"] = round(ratio, 2)
    BENCH_RESULTS["e16_row_vs_columnar_abs_error"] = diff


if __name__ == "__main__":
    main()
