"""E9 — Theorem 7.1(ii): lifted inference beats every DPLL-style algorithm.

The query Q_W = h₀ ∨ (h₁ ∧ h₂) over the vocabulary R, S1, S2, S3 with
  h₀ = R(x),S1(x,y)   h₁ = S1(x,y),S2(x,y)   h₂ = S2(x,y),S3(x,y)
is liftable (it needs the conjunction-side inclusion/exclusion with
cancellation), hence PTIME — yet the decision-DNNF trace of DPLL (with
caching and components) explodes with the domain size, exactly the
separation the theorem asserts.

Regenerated series: trace size and DPLL time vs n, lifted time vs n.
"""

import time

import pytest

from repro.lifted.engine import LiftedEngine
from repro.lineage.build import lineage_of_ucq
from repro.logic.cq import UnionOfConjunctiveQueries, parse_cq
from repro.wmc.dpll import compile_decision_dnnf
from repro.workloads.generators import full_tid

from tables import print_table

SCHEMA = (("R", 1), ("S1", 2), ("S2", 2), ("S3", 2))


def qw() -> UnionOfConjunctiveQueries:
    h0 = parse_cq("R(x0), S1(x0,y0)")
    h1 = parse_cq("S1(x1,y1), S2(x1,y1)")
    h2 = parse_cq("S2(x2,y2), S3(x2,y2)")
    return UnionOfConjunctiveQueries((h0, h1.conjoin(h2))).minimize()


def grounded_rows(sizes=(1, 2, 3)):
    query = qw()
    rows = []
    for n in sizes:
        db = full_tid(29, n, SCHEMA)
        lineage = lineage_of_ucq(query, db)
        start = time.perf_counter()
        result = compile_decision_dnnf(lineage.expr, lineage.probabilities())
        grounded_time = time.perf_counter() - start
        start = time.perf_counter()
        lifted = LiftedEngine(db).probability(query)
        lifted_time = time.perf_counter() - start
        assert abs(lifted - result.probability) < 1e-7
        rows.append(
            (
                n,
                lineage.variable_count,
                result.trace_size,
                f"{grounded_time:.3f}s",
                f"{lifted_time:.4f}s",
            )
        )
    return rows


def lifted_rows(sizes=(5, 10, 20, 40)):
    query = qw()
    rows = []
    for n in sizes:
        db = full_tid(29, n, SCHEMA)
        start = time.perf_counter()
        p = LiftedEngine(db).probability(query)
        elapsed = time.perf_counter() - start
        rows.append((n, 2 * n + 3 * n * n, f"{elapsed:.3f}s", f"{p:.6g}"))
    return rows


def test_e09_qw_is_liftable_and_correct():
    query = qw()
    db = full_tid(29, 2, SCHEMA)
    lineage = lineage_of_ucq(query, db)
    result = compile_decision_dnnf(lineage.expr, lineage.probabilities())
    lifted = LiftedEngine(db).probability(query)
    assert abs(lifted - result.probability) < 1e-9


def test_e09_trace_grows_superpolynomially():
    rows = grounded_rows(sizes=(1, 2, 3))
    sizes = [row[2] for row in rows]
    # growth factor far beyond any fixed polynomial over these tiny steps
    assert sizes[1] / sizes[0] > 10
    assert sizes[2] / sizes[1] > 25


def test_e09_lifted_scales_to_large_domains():
    rows = lifted_rows(sizes=(5, 20))
    assert all(0.0 <= float(row[3]) <= 1.0 for row in rows)


@pytest.mark.benchmark(group="e09-separation")
def test_e09_grounded_n2(benchmark):
    query = qw()
    db = full_tid(29, 2, SCHEMA)
    lineage = lineage_of_ucq(query, db)
    probabilities = lineage.probabilities()

    def run():
        return compile_decision_dnnf(lineage.expr, probabilities).probability

    assert 0.0 <= benchmark(run) <= 1.0


@pytest.mark.benchmark(group="e09-separation")
def test_e09_lifted_n20(benchmark):
    query = qw()
    db = full_tid(29, 20, SCHEMA)

    def run():
        return LiftedEngine(db).probability(query)

    assert 0.0 <= benchmark(run) <= 1.0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows_grounded = grounded_rows()
    rows_lifted = lifted_rows()
    print_table(
        "E9a: decision-DNNF trace of DPLL on Q_W (exponential)",
        ["n", "lineage vars", "trace size", "DPLL time", "lifted time"],
        rows_grounded,
    )
    print_table(
        "E9b: lifted inference on Q_W (polynomial)",
        ["n", "tuples", "time", "p"],
        rows_lifted,
    )
    BENCH_RESULTS.update(
        {
            "grounded_max_n": rows_grounded[-1][0],
            "lifted_max_n": rows_lifted[-1][0],
        }
    )


if __name__ == "__main__":
    main()
