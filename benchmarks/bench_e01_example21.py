"""E1 — Example 2.1 / Figure 1: the inclusion-constraint probability.

Regenerates: the paper's closed-form expression for
p(∀x∀y (S(x,y) ⇒ R(x))) on the Figure 1 TID, and shows that every engine
(closed form, possible worlds, lifted, DPLL) produces the same number.
"""

import random

import pytest

from repro.lifted.engine import lifted_probability
from repro.lineage.build import lineage_of_sentence
from repro.logic.parser import parse
from repro.wmc.dpll import dpll_probability
from repro.workloads.generators import figure1_database

from tables import print_table

QUERY = parse("forall x. forall y. (~S(x,y) | R(x))")


def closed_form(p, q):
    """The formula displayed in Example 2.1."""
    return (
        (p[0] + (1 - p[0]) * (1 - q[0]) * (1 - q[1]))
        * (p[1] + (1 - p[1]) * (1 - q[2]) * (1 - q[3]) * (1 - q[4]))
        * (1 - q[5])
    )


def sample_instance(seed):
    rng = random.Random(seed)
    p = [round(rng.uniform(0.1, 0.9), 3) for _ in range(3)]
    q = [round(rng.uniform(0.1, 0.9), 3) for _ in range(6)]
    return figure1_database(p, q), p, q


def compute_rows():
    rows = []
    for seed in (0, 1, 2):
        db, p, q = sample_instance(seed)
        formula = closed_form(p, q)
        brute = db.brute_force_probability(QUERY)
        lifted = lifted_probability(QUERY, db)
        lineage = lineage_of_sentence(QUERY, db)
        dpll = dpll_probability(lineage.expr, lineage.probabilities())
        rows.append(
            (seed, f"{formula:.9f}", f"{brute:.9f}", f"{lifted:.9f}", f"{dpll:.9f}")
        )
        assert abs(formula - brute) < 1e-9
        assert abs(formula - lifted) < 1e-9
        assert abs(formula - dpll) < 1e-9
    return rows


def test_e01_all_engines_match_closed_form():
    compute_rows()


@pytest.mark.benchmark(group="e01-example21")
def test_e01_lifted(benchmark):
    db, _, _ = sample_instance(0)
    result = benchmark(lifted_probability, QUERY, db)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="e01-example21")
def test_e01_grounded_dpll(benchmark):
    db, _, _ = sample_instance(0)
    lineage = lineage_of_sentence(QUERY, db)
    probabilities = lineage.probabilities()
    result = benchmark(dpll_probability, lineage.expr, probabilities)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="e01-example21")
def test_e01_possible_worlds(benchmark):
    db, _, _ = sample_instance(0)
    result = benchmark(db.brute_force_probability, QUERY)
    assert 0.0 <= result <= 1.0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows = compute_rows()
    print_table(
        "E1: Example 2.1 on Figure 1 (3 random instantiations)",
        ["seed", "closed form", "possible worlds", "lifted", "DPLL"],
        rows,
    )
    # compute_rows asserts all four engines agree to 1e-9 per seed.
    BENCH_RESULTS.update({"instantiations": len(rows), "engines_agree": True})


if __name__ == "__main__":
    main()
