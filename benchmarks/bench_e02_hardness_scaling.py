"""E2 — Theorem 2.2: H0 is #P-hard; safe queries stay polynomial.

Regenerates the observable consequence of the hardness theorem: exact
grounded inference (DPLL with caching + components) on H0's lineage blows up
exponentially with the domain, while the safe query R(x),S(x,y) is evaluated
by lifted inference in polynomial time even for domains 50× larger.

Ablation (DESIGN.md): DPLL with components+cache vs plain Shannon DPLL.
"""

import time

import pytest

from repro.lifted.engine import LiftedEngine
from repro.lineage.build import lineage_of_cq
from repro.logic.cq import parse_cq
from repro.wmc.dpll import DPLLCounter
from repro.workloads.generators import full_tid

from tables import print_table

H0_CQ = parse_cq("R(x), S(x,y), T(y)")
SAFE_CQ = parse_cq("R(x), S(x,y)")


def h0_rows(max_n=5):
    rows = []
    for n in range(2, max_n + 1):
        db = full_tid(11, n)
        lineage = lineage_of_cq(H0_CQ, db)
        start = time.perf_counter()
        result = DPLLCounter().run(lineage.expr, lineage.probabilities())
        elapsed = time.perf_counter() - start
        rows.append(
            (
                n,
                lineage.variable_count,
                result.statistics.shannon_expansions,
                f"{elapsed:.3f}s",
                f"{result.probability:.6f}",
            )
        )
    return rows


def safe_rows(sizes=(10, 25, 50, 100, 200)):
    rows = []
    for n in sizes:
        db = full_tid(11, n, schema=(("R", 1), ("S", 2)))
        engine = LiftedEngine(db)
        start = time.perf_counter()
        p = engine.probability(SAFE_CQ)
        elapsed = time.perf_counter() - start
        rows.append((n, n + n * n, f"{elapsed:.3f}s", f"{p:.6f}"))
    return rows


def ablation_rows(n=3):
    db = full_tid(11, n)
    lineage = lineage_of_cq(H0_CQ, db)
    probabilities = lineage.probabilities()
    rows = []
    for cache, components in ((True, True), (True, False), (False, True)):
        counter = DPLLCounter(use_cache=cache, use_components=components)
        start = time.perf_counter()
        result = counter.run(lineage.expr, probabilities)
        elapsed = time.perf_counter() - start
        rows.append(
            (
                f"cache={cache}, components={components}",
                result.statistics.calls,
                result.statistics.cache_hits,
                f"{elapsed:.3f}s",
            )
        )
    return rows


def test_e02_h0_cost_grows_superlinearly():
    rows = h0_rows(max_n=4)
    expansions = [row[2] for row in rows]
    # each +1 in domain size should multiply the search effort
    assert expansions[-1] > expansions[0] * 4


def test_e02_safe_query_scales():
    rows = safe_rows(sizes=(10, 50, 100))
    assert all(0.0 <= float(row[3]) <= 1.0 for row in rows)


@pytest.mark.benchmark(group="e02-hardness")
def test_e02_grounded_h0_n3(benchmark):
    db = full_tid(11, 3)
    lineage = lineage_of_cq(H0_CQ, db)
    probabilities = lineage.probabilities()

    def run():
        return DPLLCounter().run(lineage.expr, probabilities).probability

    assert 0.0 <= benchmark(run) <= 1.0


@pytest.mark.benchmark(group="e02-hardness")
def test_e02_lifted_safe_n100(benchmark):
    db = full_tid(11, 100, schema=(("R", 1), ("S", 2)))

    def run():
        return LiftedEngine(db).probability(SAFE_CQ)

    assert 0.0 <= benchmark(run) <= 1.0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows_h0 = h0_rows()
    rows_safe = safe_rows()
    print_table(
        "E2a: exact grounded inference on H0 (exponential)",
        ["n", "lineage vars", "Shannon expansions", "time", "p"],
        rows_h0,
    )
    print_table(
        "E2b: lifted inference on the safe query R(x),S(x,y) (polynomial)",
        ["n", "tuples", "time", "p"],
        rows_safe,
    )
    BENCH_RESULTS.update(
        {"h0_max_n": rows_h0[-1][0], "safe_max_n": rows_safe[-1][0]}
    )
    print_table(
        "E2c ablation: DPLL variants on H0, n=3",
        ["configuration", "calls", "cache hits", "time"],
        ablation_rows(),
    )


if __name__ == "__main__":
    main()
