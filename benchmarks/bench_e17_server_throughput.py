"""E17 — serving layer: coalescing throughput and tail latency under load.

A closed-loop load generator drives a real :class:`repro.server.QueryServer`
over TCP sockets (each client thread owns one connection and fires its next
request the moment the previous answer lands). Three measurements:

* **coalescing on vs off** — the same repeated-traffic workload against
  (a) a server with request coalescing + the shared session cache, and
  (b) the naive baseline (``coalesce=False``: every request is admitted
  and computed from scratch). Coalescing must deliver ≥ 3× the
  throughput — concurrent identical requests share one computation.
* **tail latency under oversubscription** — 4× more client threads than
  evaluation workers; the p99 request latency must stay bounded (within
  ``P99_BUDGET_S``) because coalescing collapses the pile-up instead of
  queueing duplicate work.
* **degradation correctness** — every answer names its ladder rung and
  guarantee, and degraded answers agree with the exact probability
  within the rung's stated error bound.

Run directly for tables (``--quick`` for the CI smoke variant), or via
pytest for the assertions.
"""

import argparse
import statistics
import threading
import time

from repro.engine.session import EngineSession
from repro.obs import MetricsRegistry
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.workloads.generators import full_tid

from tables import print_table

#: The repeated-traffic workload: two #P-hard queries (grounded DPLL — the
#: expensive evaluations coalescing pays off on) plus one safe query.
WORKLOAD = (
    "R(x), S(x,y), T(y)",
    "T(y), S(x,y), R(x) | R(u), T(u)",
    "R(x), S(x,y)",
)

#: Absolute tail-latency budget under 4× oversubscription. Generous for CI
#: machines; the point is that p99 does not grow with the duplicate-request
#: pile-up the way the naive server's does.
P99_BUDGET_S = 5.0

WORKERS = 2
SEED = 17

# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def _make_server(domain_size, coalesce):
    session = EngineSession(full_tid(41, domain_size), seed=SEED)
    config = ServerConfig(
        workers=WORKERS,
        max_pending=1024,
        coalesce=coalesce,
        request_timeout_s=120.0,
    )
    return ServerThread(session, config, registry=MetricsRegistry())


def closed_loop(port, clients, requests_each, queries=WORKLOAD):
    """Drive the server with *clients* threads; return (latencies, responses)."""
    latencies = []
    responses = []
    lock = threading.Lock()
    errors = []

    def run_client(index):
        try:
            with ServerClient("127.0.0.1", port, timeout_s=120.0) as client:
                local_lat, local_resp = [], []
                for i in range(requests_each):
                    query = queries[(index + i) % len(queries)]
                    start = time.perf_counter()
                    response = client.query(query, id=f"c{index}-{i}")
                    local_lat.append(time.perf_counter() - start)
                    local_resp.append(response)
                with lock:
                    latencies.extend(local_lat)
                    responses.extend(local_resp)
        except Exception as error:  # noqa: BLE001 - surfaced to the caller
            with lock:
                errors.append(error)

    threads = [
        threading.Thread(target=run_client, args=(i,)) for i in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return latencies, responses, elapsed


def measure_mode(domain_size, clients, requests_each, coalesce):
    """Throughput + latency stats for one server mode."""
    with _make_server(domain_size, coalesce) as server:
        latencies, responses, elapsed = closed_loop(
            server.port, clients, requests_each
        )
        snapshot = server.server.registry.snapshot()
    total = clients * requests_each
    assert len(responses) == total
    for response in responses:
        assert response.get("ok"), f"request failed: {response}"
        assert response.get("rung") in ("exact", "bounds", "sampled"), response
        assert response.get("guarantee"), f"answer must state a guarantee: {response}"
    latencies.sort()
    return {
        "throughput": total / elapsed,
        "elapsed": elapsed,
        "p50": latencies[len(latencies) // 2],
        "p99": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
        "mean": statistics.fmean(latencies),
        "coalesced": int(snapshot.get("server_coalesced_total", 0)),
        "responses": responses,
    }


def degraded_agreement(domain_size=3):
    """Force degraded rungs; check each against the exact answer and bound.

    Returns ``(records, ok)`` where each record is
    ``(rung, exact_p, answer_p, stated_bound, within)``.
    """
    session = EngineSession(full_tid(41, domain_size), seed=SEED)
    hard = "R(x), S(x,y), T(y)"
    exact_p = session.query(hard).probability

    records = []
    with ServerThread(
        session,
        ServerConfig(workers=WORKERS, request_timeout_s=120.0),
        registry=MetricsRegistry(),
    ) as server:
        with ServerClient("127.0.0.1", server.port, timeout_s=120.0) as client:
            # Bounds rung: make exact structurally unaffordable.
            limit = session.pdb.exact_lineage_limit
            session.pdb.exact_lineage_limit = 0
            try:
                bounded = client.query(hard, deadline_ms=10_000)
            finally:
                session.pdb.exact_lineage_limit = limit
            if bounded.get("rung") == "bounds":
                lower, upper = bounded["bounds"]["lower"], bounded["bounds"]["upper"]
                half_width = (upper - lower) / 2
                within = (
                    lower - 1e-12 <= exact_p <= upper + 1e-12
                    and abs(bounded["probability"] - exact_p) <= half_width + 1e-12
                )
                records.append(
                    ("bounds", exact_p, bounded["probability"], half_width, within)
                )

            # Sampled rung: a deadline nothing exact can meet.
            sampled = client.query(
                hard, deadline_ms=0.0001, epsilon=0.25, delta=0.05
            )
            assert sampled.get("rung") == "sampled", sampled
            bound = sampled["epsilon"] * exact_p  # relative error guarantee
            within = abs(sampled["probability"] - exact_p) <= bound
            records.append(
                ("sampled", exact_p, sampled["probability"], bound, within)
            )
    return records, all(r[-1] for r in records)


# -- assertions (tier-1 / CI) -------------------------------------------------


def test_e17_coalescing_throughput():
    on = measure_mode(4, clients=4 * WORKERS, requests_each=16, coalesce=True)
    off = measure_mode(4, clients=4 * WORKERS, requests_each=16, coalesce=False)
    speedup = on["throughput"] / off["throughput"]
    assert speedup >= 3.0, (
        f"coalescing speedup {speedup:.1f}× < 3× "
        f"(on: {on['throughput']:.0f} rps, off: {off['throughput']:.0f} rps)"
    )


def test_e17_bounded_p99_under_oversubscription():
    result = measure_mode(
        4, clients=4 * WORKERS, requests_each=16, coalesce=True
    )
    assert result["p99"] <= P99_BUDGET_S, (
        f"p99 {result['p99']:.2f}s over budget {P99_BUDGET_S}s "
        f"under {4 * WORKERS} clients / {WORKERS} workers"
    )


def test_e17_degraded_answers_within_stated_bounds():
    records, ok = degraded_agreement(domain_size=3)
    assert any(rung == "sampled" for rung, *_ in records)
    assert ok, f"degraded answers outside stated bounds: {records}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small instances (CI smoke run)"
    )
    args = parser.parse_args()
    domain_size = 4 if args.quick else 5
    clients = 4 * WORKERS
    requests_each = 16 if args.quick else 24

    on = measure_mode(domain_size, clients, requests_each, coalesce=True)
    off = measure_mode(domain_size, clients, requests_each, coalesce=False)
    speedup = on["throughput"] / off["throughput"]
    print_table(
        f"E17a: closed-loop throughput ({clients} clients × {requests_each} "
        f"requests, {WORKERS} workers, domain n={domain_size})",
        ["server mode", "throughput", "p50", "p99", "coalesced"],
        [
            (
                "naive (coalescing off, no cache)",
                f"{off['throughput']:.0f} rps",
                f"{off['p50'] * 1e3:.1f}ms",
                f"{off['p99'] * 1e3:.1f}ms",
                str(off["coalesced"]),
            ),
            (
                "coalescing + shared cache",
                f"{on['throughput']:.0f} rps",
                f"{on['p50'] * 1e3:.1f}ms",
                f"{on['p99'] * 1e3:.1f}ms",
                str(on["coalesced"]),
            ),
        ],
    )
    print(f"coalescing speedup: {speedup:.1f}× (must be ≥ 3×)")
    print(
        f"p99 under {clients / WORKERS:.0f}× oversubscription: "
        f"{on['p99'] * 1e3:.1f}ms (budget {P99_BUDGET_S:.0f}s)"
    )
    print()

    records, ok = degraded_agreement(domain_size=3)
    print_table(
        "E17b: degraded rungs vs the exact probability",
        ["rung", "exact P", "answer P", "stated bound", "within"],
        [
            (
                rung,
                f"{exact_p:.6f}",
                f"{answer_p:.6f}",
                f"±{bound:.4f}",
                str(within),
            )
            for rung, exact_p, answer_p, bound, within in records
        ],
    )
    assert ok, "degraded answers must honor their stated error bounds"

    BENCH_RESULTS.update(
        {
            "coalescing_speedup": round(speedup, 2),
            "throughput_rps_coalescing": round(on["throughput"], 1),
            "throughput_rps_naive": round(off["throughput"], 1),
            "p99_ms_oversubscribed": round(on["p99"] * 1e3, 2),
            "coalesced_requests": on["coalesced"],
            "degraded_within_bounds": ok,
        }
    )


if __name__ == "__main__":
    main()
