#!/usr/bin/env python3
"""Regenerate every experiment table (E1–E15) in one run.

The per-experiment benchmark modules each expose a ``main()`` that prints
the paper-shaped series; this driver runs them all in order. EXPERIMENTS.md
records a snapshot of this output.

Run:  python benchmarks/run_all_tables.py
"""

import importlib
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

MODULES = [
    "bench_e01_example21",
    "bench_e02_hardness_scaling",
    "bench_e03_fig2_circuits",
    "bench_e04_dichotomy",
    "bench_e05_inclusion_exclusion",
    "bench_e06_plans",
    "bench_e07_bounds",
    "bench_e08_obdd_sizes",
    "bench_e09_lifted_vs_grounded",
    "bench_e10_symmetric",
    "bench_e11_mln",
    "bench_e12_wmc_table",
    "bench_e13_approximation",
    "bench_e14_engine_cache",
    "bench_e15_boolean_kernel",
]


def main() -> None:
    total_start = time.perf_counter()
    for name in MODULES:
        module = importlib.import_module(name)
        start = time.perf_counter()
        module.main()
        print(f"\n[{name} done in {time.perf_counter() - start:.1f}s]")
        print("=" * 72)
    print(f"\nall tables regenerated in {time.perf_counter() - total_start:.1f}s")


if __name__ == "__main__":
    main()
