#!/usr/bin/env python3
"""Regenerate every experiment table (E1–E18) in one run.

The per-experiment benchmark modules each expose a ``main()`` that prints
the paper-shaped series; this driver runs them all in order. EXPERIMENTS.md
records a snapshot of this output.

Besides the printed tables, the run writes ``BENCH_results.json`` next to
this script: one record per benchmark with its name, wall-clock seconds,
and whatever machine-readable metrics the module published through its
``BENCH_RESULTS`` dict (e.g. E16's row-vs-columnar speedup ratio) — the
hook for tracking performance across commits. A bench that publishes no
metrics fails the run loudly: silent gaps in ``BENCH_results.json`` would
otherwise read as "nothing regressed".

Run:  python benchmarks/run_all_tables.py
"""

import importlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

MODULES = [
    "bench_e01_example21",
    "bench_e02_hardness_scaling",
    "bench_e03_fig2_circuits",
    "bench_e04_dichotomy",
    "bench_e05_inclusion_exclusion",
    "bench_e06_plans",
    "bench_e07_bounds",
    "bench_e08_obdd_sizes",
    "bench_e09_lifted_vs_grounded",
    "bench_e10_symmetric",
    "bench_e11_mln",
    "bench_e12_wmc_table",
    "bench_e13_approximation",
    "bench_e14_engine_cache",
    "bench_e15_boolean_kernel",
    "bench_e16_columnar_plans",
    "bench_e17_server_throughput",
    "bench_e18_worker_pool",
    "bench_e19_conditioning",
]

RESULTS_PATH = Path(__file__).parent / "BENCH_results.json"


def main() -> None:
    total_start = time.perf_counter()
    records = []
    for name in MODULES:
        module = importlib.import_module(name)
        start = time.perf_counter()
        module.main()
        seconds = time.perf_counter() - start
        print(f"\n[{name} done in {seconds:.1f}s]")
        print("=" * 72)
        metrics = dict(getattr(module, "BENCH_RESULTS", {}))
        if not metrics:
            raise SystemExit(
                f"{name} published no BENCH_RESULTS metrics — every bench "
                "must record at least one machine-readable result"
            )
        records.append(
            {
                "bench": name,
                "seconds": round(seconds, 3),
                "metrics": metrics,
            }
        )
    total = time.perf_counter() - total_start
    RESULTS_PATH.write_text(
        json.dumps(
            {"total_seconds": round(total, 3), "benchmarks": records}, indent=2
        )
        + "\n"
    )
    print(f"\nall tables regenerated in {total:.1f}s")
    print(f"machine-readable results: {RESULTS_PATH}")


if __name__ == "__main__":
    main()
