"""E10 — Sec. 8: symmetric databases make H0 (and all of FO²) tractable.

Regenerates:
  (a) the H0 closed form (with the corrected exponent (n−k)(n−ℓ); see the
      erratum note in repro.symmetric.h0) against the generic FO² WFOMC
      engine and the possible-worlds oracle;
  (b) the polynomial scaling of symmetric evaluation with n;
  (c) Theorem 8.1 on a panel of FO² queries with quantifier alternation.
"""

import time

import pytest

from repro.logic.parser import parse
from repro.symmetric.evaluate import symmetric_probability
from repro.symmetric.h0 import h0_symmetric_probability
from repro.symmetric.symmetric_db import SymmetricDatabase

from tables import print_table

H0 = parse("forall x. forall y. (R(x) | S(x,y) | T(y))")
P_R, P_S, P_T = 0.3, 0.9, 0.4

FO2_PANEL = [
    "forall x. exists y. S(x,y)",
    "exists x. forall y. S(x,y)",
    "forall x. (R(x) -> exists y. (S(x,y) & R(y)))",
    "forall x. forall y. (S(x,y) -> S(y,x))",
    "exists x. exists y. (S(x,y) & ~R(x))",
]


def h0_db(n):
    db = SymmetricDatabase(n)
    db.add_relation("R", 1, P_R)
    db.add_relation("S", 2, P_S)
    db.add_relation("T", 1, P_T)
    return db


def h0_rows(sizes=(1, 2, 3, 5, 10, 25)):
    rows = []
    for n in sizes:
        closed = h0_symmetric_probability(n, P_R, P_S, P_T)
        wfomc = symmetric_probability(H0, h0_db(n))
        brute = (
            h0_db(n).to_tid().brute_force_probability(H0) if n <= 2 else None
        )
        rows.append(
            (
                n,
                f"{closed:.6g}",
                f"{wfomc:.6g}",
                f"{brute:.6g}" if brute is not None else "-",
            )
        )
        assert abs(closed - wfomc) <= 1e-9 * max(1.0, abs(closed))
        if brute is not None:
            assert abs(closed - brute) < 1e-9
    return rows


def scaling_rows(sizes=(50, 100, 200, 400)):
    rows = []
    for n in sizes:
        start = time.perf_counter()
        value = h0_symmetric_probability(n, P_R, P_S, P_T)
        elapsed = time.perf_counter() - start
        rows.append((n, f"{value:.4g}", f"{elapsed * 1000:.2f} ms"))
    return rows


def fo2_rows(n=2):
    db = SymmetricDatabase(n)
    db.add_relation("R", 1, 0.7)
    db.add_relation("S", 2, 0.45)
    rows = []
    for text in FO2_PANEL:
        sentence = parse(text)
        fast = symmetric_probability(sentence, db)
        slow = db.to_tid().brute_force_probability(sentence)
        rows.append(
            (text, f"{fast:.6f}", f"{slow:.6f}",
             "ok" if abs(fast - slow) < 1e-9 else "MISMATCH")
        )
        assert abs(fast - slow) < 1e-9
    return rows


def test_e10_h0_closed_form_vs_wfomc_vs_brute():
    h0_rows(sizes=(1, 2, 3, 5))


def test_e10_fo2_panel_matches_brute_force():
    fo2_rows()


def test_e10_polynomial_scaling():
    start = time.perf_counter()
    h0_symmetric_probability(300, P_R, P_S, P_T)
    assert time.perf_counter() - start < 5.0


@pytest.mark.benchmark(group="e10-symmetric")
def test_e10_closed_form_n100(benchmark):
    result = benchmark(h0_symmetric_probability, 100, P_R, P_S, P_T)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="e10-symmetric")
def test_e10_wfomc_h0_n20(benchmark):
    db = h0_db(20)
    result = benchmark(symmetric_probability, H0, db)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="e10-symmetric")
def test_e10_wfomc_alternation_n15(benchmark):
    db = SymmetricDatabase(15)
    db.add_relation("S", 2, 0.45)
    sentence = parse("forall x. exists y. S(x,y)")
    result = benchmark(symmetric_probability, sentence, db)
    assert 0.0 <= result <= 1.0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows_h0 = h0_rows()
    rows_scaling = scaling_rows()
    rows_fo2 = fo2_rows()
    print_table(
        "E10a: symmetric H0 — closed form vs FO² WFOMC vs oracle",
        ["n", "closed form", "WFOMC", "possible worlds"],
        rows_h0,
    )
    print_table(
        "E10b: closed-form scaling (polynomial, Sec. 8)",
        ["n", "p(H0)", "time"],
        rows_scaling,
    )
    print_table(
        "E10c: Theorem 8.1 — FO² panel on a symmetric database (n=2)",
        ["query", "WFOMC", "oracle", "status"],
        rows_fo2,
    )
    BENCH_RESULTS.update(
        {"closed_form_max_n": rows_scaling[-1][0], "fo2_queries": len(rows_fo2)}
    )


if __name__ == "__main__":
    main()
