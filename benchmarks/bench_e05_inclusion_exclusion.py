"""E5 — Sec. 5: the inclusion/exclusion rule is necessary.

Regenerates the paper's Q_J story: the basic rules (independence +
separator) alone cannot lift Q_J, adding rule (10) makes it liftable, and
the lifted value matches grounded inference. Also reports the rule-usage
profile of the derivation.
"""

from collections import Counter

import pytest

from repro.lifted.engine import LiftedEngine
from repro.lifted.errors import NonLiftableError
from repro.lineage.build import lineage_of_ucq
from repro.logic.cq import parse_ucq
from repro.wmc.dpll import dpll_probability
from repro.workloads.generators import random_tid

from tables import print_table

QJ = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
SCHEMA = (("R", 1), ("S", 2), ("T", 1))


def make_db(n=4, seed=2):
    return random_tid(seed, n, schema=SCHEMA)


def rule_profile_rows():
    db = make_db()
    engine = LiftedEngine(db, record_trace=True)
    p = engine.probability(QJ)
    counts = Counter(step.rule for step in engine.trace)
    rows = [(rule, count) for rule, count in sorted(counts.items())]
    rows.append(("→ probability", f"{p:.6f}"))
    return rows, p


def test_e05_basic_rules_alone_fail():
    db = make_db()
    basic_only = LiftedEngine(db, use_inclusion_exclusion=False)
    with pytest.raises(NonLiftableError):
        basic_only.probability(QJ)


def test_e05_with_ie_matches_grounded():
    db = make_db(n=3)
    engine = LiftedEngine(db)
    lifted = engine.probability(QJ)
    lineage = lineage_of_ucq(QJ, db)
    grounded = dpll_probability(lineage.expr, lineage.probabilities())
    assert abs(lifted - grounded) < 1e-9


def test_e05_ie_rule_fires():
    _, profile = rule_profile_rows()[0], None
    db = make_db()
    engine = LiftedEngine(db, record_trace=True)
    engine.probability(QJ)
    assert any(step.rule == "inclusion-exclusion" for step in engine.trace)


@pytest.mark.benchmark(group="e05-inclusion-exclusion")
def test_e05_lifted_qj(benchmark):
    db = make_db(n=8)

    def run():
        return LiftedEngine(db).probability(QJ)

    assert 0.0 <= benchmark(run) <= 1.0


@pytest.mark.benchmark(group="e05-inclusion-exclusion")
def test_e05_grounded_qj(benchmark):
    db = make_db(n=4)
    lineage = lineage_of_ucq(QJ, db)
    probabilities = lineage.probabilities()
    result = benchmark(dpll_probability, lineage.expr, probabilities)
    assert 0.0 <= result <= 1.0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows, _ = rule_profile_rows()
    print_table("E5: lifted derivation profile for Q_J", ["rule", "count"], rows)
    db = make_db()
    needs_ie = False
    try:
        LiftedEngine(db, use_inclusion_exclusion=False).probability(QJ)
        print("basic rules alone: LIFTED (unexpected!)")
    except NonLiftableError as error:
        needs_ie = True
        print(f"\nbasic rules alone: NOT liftable — stuck on [{error.subquery}]")
        print("with inclusion/exclusion: liftable (table above), matching Sec. 5.")
    BENCH_RESULTS.update(
        {
            "lifted_rules_fired": sum(
                int(count) for _, count in rows if str(count).isdigit()
            ),
            "needs_inclusion_exclusion": needs_ie,
        }
    )


if __name__ == "__main__":
    main()
