"""E7 — Theorem 6.1: extensional upper/lower bounds for hard queries.

Regenerates the bound sandwich Plan_{D₁} ≤ p(Q) ≤ Plan_D on H0's CQ across
random databases, plus the min-over-plans ablation the paper describes
("generate all plans … return the minimum value").
"""

import pytest

from repro.logic.cq import parse_cq
from repro.plans.bounds import (
    extensional_bounds,
    plan_lower_bound,
    plan_upper_bound,
)
from repro.plans.dissociation import minimal_dissociations
from repro.workloads.generators import random_tid

from tables import print_table

H0_CQ = parse_cq("R(x), S(x,y), T(y)")


def sandwich_rows(seeds=(0, 1, 2, 3, 4)):
    rows = []
    for seed in seeds:
        db = random_tid(seed, 3)
        exact = db.brute_force_probability(H0_CQ.to_formula())
        bounds = extensional_bounds(H0_CQ, db)
        rows.append(
            (
                seed,
                f"{bounds.lower:.6f}",
                f"{exact:.6f}",
                f"{bounds.upper:.6f}",
                f"{bounds.width:.4f}",
                "yes" if bounds.contains(exact) else "NO",
            )
        )
        assert bounds.contains(exact)
    return rows


def ablation_rows(seed=1):
    """Min over all plans vs each single plan (paper's pruning discussion)."""
    db = random_tid(seed, 3)
    exact = db.brute_force_probability(H0_CQ.to_formula())
    rows = []
    for dissociation in minimal_dissociations(H0_CQ):
        upper = plan_upper_bound(H0_CQ, db, dissociation)
        lower = plan_lower_bound(H0_CQ, db, dissociation)
        rows.append(
            (str(dissociation), f"{lower:.6f}", f"{upper:.6f}",
             f"{upper - exact:.6f}")
        )
    bounds = extensional_bounds(H0_CQ, db)
    rows.append(
        ("min/max over plans", f"{bounds.lower:.6f}", f"{bounds.upper:.6f}",
         f"{bounds.upper - exact:.6f}")
    )
    return rows, exact


def test_e07_sandwich_holds():
    sandwich_rows()


def test_e07_min_over_plans_is_tighter_or_equal():
    db = random_tid(1, 3)
    bounds = extensional_bounds(H0_CQ, db)
    for upper in bounds.per_plan_upper:
        assert bounds.upper <= upper + 1e-12
    for lower in bounds.per_plan_lower:
        assert bounds.lower >= lower - 1e-12


@pytest.mark.benchmark(group="e07-bounds")
def test_e07_extensional_bounds(benchmark):
    db = random_tid(0, 5)
    bounds = benchmark(extensional_bounds, H0_CQ, db)
    assert bounds.lower <= bounds.upper + 1e-12


@pytest.mark.benchmark(group="e07-bounds")
def test_e07_single_plan_upper(benchmark):
    db = random_tid(0, 5)
    dissociation = minimal_dissociations(H0_CQ)[0]
    result = benchmark(plan_upper_bound, H0_CQ, db, dissociation)
    assert 0.0 <= result <= 1.0 + 1e-9


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    sandwich = sandwich_rows()
    print_table(
        "E7: Theorem 6.1 sandwich on H0-CQ (random TIDs, n=3)",
        ["seed", "lower", "exact", "upper", "width", "contained"],
        sandwich,
    )
    rows, exact = ablation_rows()
    BENCH_RESULTS.update(
        {"sandwich_instances": len(sandwich), "ablation_exact_p": exact}
    )
    print_table(
        f"E7 ablation: per-plan bounds vs min-over-plans (exact = {exact:.6f})",
        ["plan (dissociation)", "lower", "upper", "upper slack"],
        rows,
    )


if __name__ == "__main__":
    main()
