"""E8 — Theorem 7.1(i): OBDD sizes for hierarchical vs non-hierarchical CQs.

Regenerates the size separation:
  (a) hierarchical R(x),S(x,y): OBDD linear in the lineage (with the
      hierarchy-derived order) — measured exactly = #tuples;
  (b) non-hierarchical H0-CQ: every order is large; we report the default
      order's size, the paper's (2ⁿ−1)/n lower bound, and (for tiny n) the
      exhaustive minimum over all orders.

Ablation (DESIGN.md): hierarchy order vs adversarial predicate-major order.
"""

import pytest

from repro.kc.obdd import compile_obdd
from repro.kc.orders import (
    exhaustive_minimum_size,
    hierarchical_order,
    predicate_major_order,
)
from repro.lineage.build import lineage_of_cq
from repro.logic.cq import parse_cq
from repro.workloads.generators import full_tid

from tables import print_table

SAFE = parse_cq("R(x), S(x,y)")
HARD = parse_cq("R(x), S(x,y), T(y)")


def hierarchical_rows(sizes=(2, 4, 6, 8, 10)):
    rows = []
    for n in sizes:
        db = full_tid(23, n, schema=(("R", 1), ("S", 2)))
        lineage = lineage_of_cq(SAFE, db)
        good = compile_obdd(lineage.expr, hierarchical_order(SAFE, lineage))
        bad = compile_obdd(lineage.expr, predicate_major_order(lineage))
        rows.append(
            (
                n,
                lineage.variable_count,
                good[0].size(good[1]),
                bad[0].size(bad[1]),
            )
        )
    return rows


def hard_rows(sizes=(2, 3, 4, 5, 6)):
    rows = []
    for n in sizes:
        db = full_tid(23, n)
        lineage = lineage_of_cq(HARD, db)
        manager, root = compile_obdd(lineage.expr)
        bound = (2 ** n - 1) / n
        exhaustive = (
            exhaustive_minimum_size(lineage.expr, sorted(lineage.expr.variables()))
            if n <= 2
            else "-"
        )
        rows.append((n, lineage.variable_count, manager.size(root), f"{bound:.1f}", exhaustive))
    return rows


def test_e08_hierarchical_linear_under_good_order():
    for n, variables, good, _ in hierarchical_rows(sizes=(2, 4, 6)):
        assert good <= variables + 2


def test_e08_bad_order_exponential_trend():
    rows = hierarchical_rows(sizes=(2, 4, 6))
    bad_sizes = [row[3] for row in rows]
    good_sizes = [row[2] for row in rows]
    # adversarial order grows strictly faster than the linear one
    assert bad_sizes[-1] / bad_sizes[0] > 2 * good_sizes[-1] / good_sizes[0]


def test_e08_hard_query_exceeds_paper_bound():
    for n, _, size, bound, _ in hard_rows(sizes=(2, 3, 4)):
        assert size >= float(bound)


def test_e08_exhaustive_minimum_still_large():
    db = full_tid(23, 2)
    lineage = lineage_of_cq(HARD, db)
    minimum = exhaustive_minimum_size(
        lineage.expr, sorted(lineage.expr.variables())
    )
    assert minimum >= (2 ** 2 - 1) / 2


@pytest.mark.benchmark(group="e08-obdd")
def test_e08_compile_hierarchical_good_order(benchmark):
    db = full_tid(23, 6, schema=(("R", 1), ("S", 2)))
    lineage = lineage_of_cq(SAFE, db)
    order = hierarchical_order(SAFE, lineage)

    def run():
        manager, root = compile_obdd(lineage.expr, order)
        return manager.size(root)

    assert benchmark(run) > 0


@pytest.mark.benchmark(group="e08-obdd")
def test_e08_compile_nonhierarchical(benchmark):
    db = full_tid(23, 4)
    lineage = lineage_of_cq(HARD, db)

    def run():
        manager, root = compile_obdd(lineage.expr)
        return manager.size(root)

    assert benchmark(run) > 0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows_easy = hierarchical_rows()
    rows_hard = hard_rows()
    print_table(
        "E8a: OBDD size, hierarchical R(x),S(x,y) (Thm 7.1(i)(a))",
        ["n", "lineage vars", "hierarchy order", "predicate-major order"],
        rows_easy,
    )
    print_table(
        "E8b: OBDD size, non-hierarchical H0-CQ (Thm 7.1(i)(b))",
        ["n", "lineage vars", "default order", "(2^n-1)/n bound", "exhaustive min"],
        rows_hard,
    )
    BENCH_RESULTS.update(
        {"hierarchical_max_n": rows_easy[-1][0], "hard_max_n": rows_hard[-1][0]}
    )


if __name__ == "__main__":
    main()
