"""E13 — Approximation for the "other" queries (Sec. 10's open challenge).

For #P-hard queries the library falls back to approximation. Regenerates a
convergence table for H0's lineage: naive Monte Carlo (additive guarantee)
vs Karp–Luby (relative guarantee on the positive DNF), against exact DPLL.
The Karp–Luby advantage shows on low-probability instances, where naive MC
needs ~1/p² samples for the same relative error.
"""

import random

import pytest

from repro.booleans.forms import to_dnf
from repro.lineage.build import lineage_of_cq
from repro.logic.cq import parse_cq
from repro.wmc.dpll import dpll_probability
from repro.wmc.karp_luby import karp_luby
from repro.wmc.sampling import monte_carlo_wmc
from repro.workloads.generators import full_tid, random_tid

from tables import print_table

H0_CQ = parse_cq("R(x), S(x,y), T(y)")


def convergence_rows(samples_grid=(200, 1000, 5000, 20000)):
    db = full_tid(41, 4)
    lineage = lineage_of_cq(H0_CQ, db)
    probabilities = lineage.probabilities()
    exact = dpll_probability(lineage.expr, probabilities)
    clauses = to_dnf(lineage.expr)
    rows = []
    for n_samples in samples_grid:
        mc = monte_carlo_wmc(
            lineage.expr, probabilities, rng=random.Random(1), samples=n_samples
        )
        kl = karp_luby(
            clauses, probabilities, rng=random.Random(1), samples=n_samples
        )
        rows.append(
            (
                n_samples,
                f"{exact:.6f}",
                f"{mc.estimate:.6f}",
                f"{abs(mc.estimate - exact):.6f}",
                f"{kl.estimate:.6f}",
                f"{abs(kl.estimate - exact):.6f}",
            )
        )
    return rows, exact


def low_probability_rows(samples=20000):
    db = random_tid(
        43, 4, probability_range=(0.01, 0.08)
    )
    lineage = lineage_of_cq(H0_CQ, db)
    probabilities = lineage.probabilities()
    exact = dpll_probability(lineage.expr, probabilities)
    clauses = to_dnf(lineage.expr)
    mc = monte_carlo_wmc(
        lineage.expr, probabilities, rng=random.Random(5), samples=samples
    )
    kl = karp_luby(clauses, probabilities, rng=random.Random(5), samples=samples)

    def relative(estimate):
        return abs(estimate - exact) / exact if exact else float("nan")

    return [
        ("exact (DPLL)", f"{exact:.3e}", "-"),
        ("naive MC", f"{mc.estimate:.3e}", f"{relative(mc.estimate):.2%}"),
        ("Karp–Luby", f"{kl.estimate:.3e}", f"{relative(kl.estimate):.2%}"),
    ], exact, relative(mc.estimate), relative(kl.estimate)


def test_e13_estimators_converge():
    rows, exact = convergence_rows(samples_grid=(2000, 20000))
    final_mc_error = float(rows[-1][3])
    final_kl_error = float(rows[-1][5])
    assert final_mc_error < 0.03
    assert final_kl_error < 0.03


def test_e13_karp_luby_wins_on_small_probabilities():
    _, exact, mc_rel, kl_rel = low_probability_rows()
    assert exact < 0.05
    assert kl_rel < 0.5  # relative guarantee holds where naive MC degrades


@pytest.mark.benchmark(group="e13-approximation")
def test_e13_monte_carlo(benchmark):
    db = full_tid(41, 4)
    lineage = lineage_of_cq(H0_CQ, db)
    probabilities = lineage.probabilities()

    def run():
        return monte_carlo_wmc(
            lineage.expr, probabilities, rng=random.Random(0), samples=2000
        ).estimate

    assert 0.0 <= benchmark(run) <= 1.0


@pytest.mark.benchmark(group="e13-approximation")
def test_e13_karp_luby(benchmark):
    db = full_tid(41, 4)
    lineage = lineage_of_cq(H0_CQ, db)
    probabilities = lineage.probabilities()
    clauses = to_dnf(lineage.expr)

    def run():
        return karp_luby(
            clauses, probabilities, rng=random.Random(0), samples=2000
        ).estimate

    assert 0.0 <= benchmark(run) <= 1.0


@pytest.mark.benchmark(group="e13-approximation")
def test_e13_exact_reference(benchmark):
    db = full_tid(41, 4)
    lineage = lineage_of_cq(H0_CQ, db)
    probabilities = lineage.probabilities()
    result = benchmark(dpll_probability, lineage.expr, probabilities)
    assert 0.0 <= result <= 1.0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows, exact = convergence_rows()
    print_table(
        f"E13a: convergence on H0 lineage (n=4, exact = {exact:.6f})",
        ["samples", "exact", "MC", "MC |err|", "Karp–Luby", "KL |err|"],
        rows,
    )
    rows, *_ = low_probability_rows()
    print_table(
        "E13b: low-probability instance (relative error comparison)",
        ["estimator", "estimate", "relative error"],
        rows,
    )
    BENCH_RESULTS.update({"exact_p": exact, "estimators_compared": len(rows)})


if __name__ == "__main__":
    main()
