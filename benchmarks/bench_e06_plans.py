"""E6 — Sec. 6 / footnote 9: safe vs unsafe plans on the Figure 1 data.

Regenerates the Plan₁ / Plan₂ comparison: both plans compute the same
deterministic answer but different probabilities; only Plan₂ (which
⊕-projects S onto x before the join) returns p(Q), and Plan₁ upper-bounds
it (the first glimpse of Theorem 6.1).
"""

import random

import pytest

from repro.logic.cq import parse_cq
from repro.logic.terms import Var
from repro.plans.plan import (
    JoinNode,
    ProjectNode,
    ScanNode,
    execute_boolean,
    project_boolean,
)
from repro.plans.safe_plan import safe_plan
from repro.workloads.generators import figure1_database

from tables import print_table

CQ = parse_cq("R(x), S(x,y)")
R_ATOM, S_ATOM = CQ.atoms


def plans():
    plan1 = project_boolean(JoinNode(ScanNode(R_ATOM), ScanNode(S_ATOM)))
    plan2 = project_boolean(
        JoinNode(ScanNode(R_ATOM), ProjectNode(ScanNode(S_ATOM), (Var("x"),)))
    )
    return plan1, plan2


def footnote9(p, q):
    plan1 = 1.0
    for i, j in [(0, 0), (0, 1), (1, 2), (1, 3), (1, 4)]:
        plan1 *= 1 - p[i] * q[j]
    plan1 = 1 - plan1
    plan2 = 1 - (1 - p[0] * (1 - (1 - q[0]) * (1 - q[1]))) * (
        1 - p[1] * (1 - (1 - q[2]) * (1 - q[3]) * (1 - q[4]))
    )
    return plan1, plan2


def comparison_rows():
    rows = []
    for seed in (0, 1, 2):
        rng = random.Random(seed)
        p = [round(rng.uniform(0.1, 0.9), 3) for _ in range(3)]
        q = [round(rng.uniform(0.1, 0.9), 3) for _ in range(6)]
        db = figure1_database(p, q)
        plan1, plan2 = plans()
        v1 = execute_boolean(plan1, db)
        v2 = execute_boolean(plan2, db)
        f1, f2 = footnote9(p, q)
        exact = db.brute_force_probability(CQ.to_formula())
        rows.append(
            (
                seed,
                f"{v1:.6f}",
                f"{v2:.6f}",
                f"{exact:.6f}",
                "yes" if abs(v2 - exact) < 1e-9 else "no",
                "yes" if v1 >= exact - 1e-12 else "no",
            )
        )
        assert abs(v1 - f1) < 1e-9 and abs(v2 - f2) < 1e-9
    return rows


def test_e06_footnote_formulas_and_safety():
    rows = comparison_rows()
    assert all(row[4] == "yes" and row[5] == "yes" for row in rows)


def test_e06_generated_safe_plan_equals_plan2():
    db = figure1_database((0.9, 0.5, 0.4), (0.8, 0.3, 0.7, 0.2, 0.6, 0.5))
    generated = project_boolean(safe_plan(CQ))
    _, plan2 = plans()
    assert abs(
        execute_boolean(generated, db) - execute_boolean(plan2, db)
    ) < 1e-12


@pytest.mark.benchmark(group="e06-plans")
def test_e06_safe_plan_execution(benchmark):
    db = figure1_database((0.9, 0.5, 0.4), (0.8, 0.3, 0.7, 0.2, 0.6, 0.5))
    plan = project_boolean(safe_plan(CQ))
    result = benchmark(execute_boolean, plan, db)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="e06-plans")
def test_e06_unsafe_plan_execution(benchmark):
    db = figure1_database((0.9, 0.5, 0.4), (0.8, 0.3, 0.7, 0.2, 0.6, 0.5))
    plan1, _ = plans()
    result = benchmark(execute_boolean, plan1, db)
    assert 0.0 <= result <= 1.0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows = comparison_rows()
    print_table(
        "E6: Plan1 vs Plan2 (footnote 9) on Figure 1 data",
        ["seed", "Plan1", "Plan2", "exact", "Plan2 safe?", "Plan1 ≥ exact?"],
        rows,
    )
    BENCH_RESULTS.update({"seeds_checked": len(rows)})


if __name__ == "__main__":
    main()
