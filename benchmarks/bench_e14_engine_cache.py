"""E14 — engine sessions: content-addressed caching and batched execution.

The session layer (`repro.engine`) targets the serving workload the
ROADMAP aims at: the same queries arriving over and over against a
database that changes rarely. Two measurements:

* **cold vs warm** — a workload of mixed safe/hard queries evaluated
  twice through one `EngineSession`; the second pass is pure cache
  (fingerprint + LRU lookup) and must be ≥ 5× faster (in practice it is
  orders of magnitude faster);
* **sequential vs batch** — a repeated-traffic workload evaluated (a) by
  the plain uncached façade, one call at a time, and (b) by one
  `query_batch` call whose workers share the cache and deduplicate
  in-flight work, so each distinct query is computed exactly once.

Cached answers are asserted numerically identical to uncached ones.

Run directly for tables (``--quick`` for the CI smoke variant), or via
pytest for the assertions.
"""

import argparse
import time

from repro import EngineSession, ProbabilisticDatabase
from repro.workloads.generators import full_tid

from tables import print_table

WORKLOAD = (
    "R(x), S(x,y), T(y)",       # #P-hard H0: grounded DPLL
    "R(x), S(x,y)",             # safe: lifted
    "S(x,y), T(y)",             # safe: lifted
    "R(x), S(x,y) | T(u), S(u,v)",  # UCQ
)


def cold_warm_times(domain_size=5, warm_rounds=3):
    """One session, same workload twice; returns per-pass times + agreement."""
    session = EngineSession(full_tid(41, domain_size), seed=0)
    start = time.perf_counter()
    cold = [session.query(q) for q in WORKLOAD]
    cold_time = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(warm_rounds):
        warm = [session.query(q) for q in WORKLOAD]
    warm_time = (time.perf_counter() - start) / warm_rounds
    identical = all(
        c.probability == w.probability for c, w in zip(cold, warm)
    ) and all(w.stats.cache_hit for w in warm)
    return cold_time, warm_time, identical, session


def batch_vs_sequential(domain_size=5, repeat=4):
    """Repeated traffic: plain uncached loop vs one cache-sharing batch."""
    queries = list(WORKLOAD) * repeat
    uncached = ProbabilisticDatabase(tid=full_tid(41, domain_size), seed=0)
    start = time.perf_counter()
    sequential = [uncached.probability(q) for q in queries]
    sequential_time = time.perf_counter() - start

    session = EngineSession(full_tid(41, domain_size), seed=0)
    start = time.perf_counter()
    batched = session.query_batch(queries, executor="thread")
    batch_time = time.perf_counter() - start

    identical = [a.probability for a in batched] == [
        a.probability for a in sequential
    ]
    return sequential_time, batch_time, identical, session


# -- assertions (tier-1 / CI) -------------------------------------------------


def test_e14_warm_cache_speedup():
    cold_time, warm_time, identical, _ = cold_warm_times(domain_size=4)
    assert identical
    assert cold_time >= 5 * warm_time, (
        f"warm pass not ≥5× faster: cold={cold_time:.4f}s warm={warm_time:.4f}s"
    )


def test_e14_batch_beats_sequential():
    sequential_time, batch_time, identical, session = batch_vs_sequential(
        domain_size=4, repeat=4
    )
    assert identical
    assert batch_time < sequential_time, (
        f"batch {batch_time:.4f}s not faster than sequential "
        f"{sequential_time:.4f}s"
    )
    # each distinct query computed once, the rest served from the cache
    assert session.stats.cache_misses == len(WORKLOAD)


def test_e14_cached_equals_uncached():
    session = EngineSession(full_tid(41, 4), seed=0)
    reference = ProbabilisticDatabase(tid=full_tid(41, 4), seed=0)
    for query in WORKLOAD:
        cold = session.query(query)
        warm = session.query(query)
        assert warm.probability == cold.probability
        assert cold.probability == reference.probability(query).probability


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small instances (CI smoke run)"
    )
    args = parser.parse_args()
    domain_size = 4 if args.quick else 5
    repeat = 3 if args.quick else 6

    cold_time, warm_time, identical, session = cold_warm_times(domain_size)
    print_table(
        f"E14a: cold vs warm (domain n={domain_size}, {len(WORKLOAD)} queries)",
        ["pass", "time", "speedup", "identical"],
        [
            ("cold (first evaluation)", f"{cold_time * 1e3:.1f}ms", "1×", "-"),
            (
                "warm (content-addressed cache)",
                f"{warm_time * 1e3:.3f}ms",
                f"{cold_time / warm_time:.0f}×",
                str(identical),
            ),
        ],
    )
    print(session.report())
    print()

    sequential_time, batch_time, identical, session = batch_vs_sequential(
        domain_size, repeat
    )
    print_table(
        f"E14b: repeated traffic ({len(WORKLOAD)} queries × {repeat})",
        ["strategy", "time", "speedup", "identical"],
        [
            (
                "sequential, uncached façade",
                f"{sequential_time * 1e3:.1f}ms",
                "1×",
                "-",
            ),
            (
                "query_batch (threads + shared cache)",
                f"{batch_time * 1e3:.1f}ms",
                f"{sequential_time / batch_time:.1f}×",
                str(identical),
            ),
        ],
    )
    print(session.report())
    BENCH_RESULTS.update(
        {
            "cold_warm_speedup": round(cold_time / warm_time, 1),
            "batch_speedup": round(sequential_time / batch_time, 2),
        }
    )


if __name__ == "__main__":
    main()
