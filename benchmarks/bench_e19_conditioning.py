"""E19 — conditioning: compile-once scenarios vs per-request recompilation.

The scenario-session design (Koch–Olteanu conditioning behind
``POST /condition``) rests on two amortization claims, both measured here
against their naive baselines on the same database and constraint set:

* **Install once, serve many** — N distinct conditioned requests
  (posteriors ``P(Q | Γ)`` and what-if derivations) against one installed
  scenario must run ≥ {REUSE_FLOOR}× faster than recompiling Γ for every
  request. The win is the persistent count cache: compiling Γ seeds it
  with every Shannon subformula of the constraint circuit, and later
  conjunction counts re-use them.
* **What-if by cofactor** — deriving a scenario with
  :meth:`~repro.condition.core.ConditionedScenario.whatif` (a kernel
  restriction of the compiled Γ, no recompile) must be ≥ {WHATIF_FLOOR}×
  faster than conditioning afresh on Γ ∪ {{±fact}}.

Correctness is not traded for the speed: on a small instance every
conditioned artifact — posteriors, what-if posteriors, per-fact
marginals — is checked against brute-force possible-world enumeration to
1e-9.

Run directly for tables (``--quick`` for the CI smoke variant), or via
``pytest benchmarks/bench_e19_conditioning.py`` for the assertions.
"""

import argparse
import itertools
import time

from repro.condition import ConditionedScenario, ConstraintSet, ScenarioManager
from repro.condition.core import _parse_fact
from repro.core.pdb import ProbabilisticDatabase
from repro.logic.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.logic.semantics import satisfies
from repro.obs import MetricsRegistry
from repro.workloads.generators import full_tid

from tables import print_table

SEED = 19

#: Domain size for the timing instance (facts: n unary R + n² S + n unary T).
DOMAIN = 5

#: Domain size for the brute-force agreement instance (2^15 worlds).
SMALL_DOMAIN = 3

#: Γ: a #P-hard join required true, plus one fact denial — representative
#: of "integrate a view over uncertain data with known evidence".
GAMMA = ('R(x), S(x,y), T(y)', '-S("c0","c1")')

REUSE_FLOOR = 5.0
WHATIF_FLOOR = 10.0
TOL = 1e-9

# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def _pdb(domain):
    return ProbabilisticDatabase(tid=full_tid(41, domain), seed=SEED)


def _atom_specs(pdb):
    """Ground-atom specs for every fact, deterministic order."""
    return [
        f'{name}({", ".join(repr(v) for v in values)})'
        for name, values, _ in pdb.tid.facts()
    ]


def _forceable_atoms(pdb):
    """Atoms usable as what-if evidence: not already pinned by Γ itself."""
    gamma_facts = {
        _parse_fact(pdb, c.text)
        for c in ConstraintSet.parse(GAMMA)
        if c.kind in ("assert", "deny")
    }
    return [
        spec
        for spec in _atom_specs(pdb)
        if _parse_fact(pdb, spec) not in gamma_facts
    ]


def _requests(pdb, total):
    """N distinct conditioned requests: posteriors and what-if posteriors."""
    atoms = _atom_specs(pdb)
    requests = [("posterior", spec, None) for spec in atoms]
    query = atoms[0]
    for spec, value in itertools.product(_forceable_atoms(pdb), (True, False)):
        if spec != query:
            requests.append(("whatif", query, {spec: value}))
    assert len(requests) >= total, f"only {len(requests)} requests available"
    return requests[:total]


def _serve(scenario, request):
    kind, query, force = request
    target = scenario if force is None else scenario.whatif(force)
    return target.posterior(query).probability


# -- the two amortization measurements ----------------------------------------


def measure_reuse(total):
    """One installed scenario serving *total* requests vs recompile-per-request."""
    pdb = _pdb(DOMAIN)
    requests = _requests(pdb, total)

    manager = ScenarioManager(pdb, registry=MetricsRegistry())
    start = time.perf_counter()
    scenario_id, _ = manager.install(GAMMA)
    install_s = time.perf_counter() - start

    start = time.perf_counter()
    served = [_serve(manager.resolve(scenario_id), r) for r in requests]
    reuse_s = time.perf_counter() - start

    start = time.perf_counter()
    recompiled = [
        _serve(ConditionedScenario.compile(pdb, GAMMA), r) for r in requests
    ]
    recompile_s = time.perf_counter() - start

    # Both sides are exact; they may differ at float-rounding level because
    # the installed side answers via the compiled circuit while each fresh
    # scenario's what-ifs count by DPLL.
    assert all(
        abs(a - b) <= TOL for a, b in zip(served, recompiled)
    ), "reuse changed an answer"
    return {
        "requests": total,
        "install_s": install_s,
        "reuse_s": reuse_s,
        "recompile_s": recompile_s,
        # The honest comparison charges the install to the reuse side.
        "speedup": recompile_s / (install_s + reuse_s),
    }


def measure_whatif(count):
    """Cofactor derivation vs fresh conditioning on Γ ∪ {±fact}."""
    pdb = _pdb(DOMAIN)
    atoms = _forceable_atoms(pdb)
    base = ConditionedScenario.compile(pdb, GAMMA)
    query = atoms[0]
    cases = [
        (atoms[1 + (i % (len(atoms) - 1))], i % 2 == 0) for i in range(count)
    ]

    # Serve one posterior first so Γ's circuit is compiled: that is the
    # installed-scenario steady state (install-time work is charged to the
    # reuse side in measure_reuse), and what-ifs derive from the circuit.
    base.posterior(query)

    start = time.perf_counter()
    derived = [
        base.whatif({spec: value}).posterior(query).probability
        for spec, value in cases
    ]
    cofactor_s = time.perf_counter() - start

    start = time.perf_counter()
    fresh = [
        ConditionedScenario.compile(
            pdb, list(GAMMA) + [("+" if value else "-") + spec]
        )
        .posterior(query)
        .probability
        for spec, value in cases
    ]
    fresh_s = time.perf_counter() - start

    drift = max(abs(a - b) for a, b in zip(derived, fresh))
    assert drift <= TOL, f"cofactor diverged from fresh conditioning by {drift}"
    return {
        "whatifs": count,
        "cofactor_s": cofactor_s,
        "fresh_s": fresh_s,
        "speedup": fresh_s / cofactor_s,
    }


# -- brute-force agreement ----------------------------------------------------


def _as_sentence(pdb, text):
    parsed = pdb.parse_query(text)
    if isinstance(parsed, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        return parsed.to_formula()
    return parsed


def _brute(pdb, specs, query=None, force=None):
    """``(P(Q∧Γ), P(Γ))`` by possible-world enumeration (oracle)."""
    gamma = ConstraintSet.parse(specs)
    forced = {_parse_fact(pdb, k): v for k, v in (force or {}).items()}
    tid = pdb.tid
    domain = tid.domain()
    sentence = _as_sentence(pdb, query) if query is not None else None
    joint = mass = 0.0
    for world, probability in tid.possible_worlds():
        if probability == 0.0:  # prodb-lint: exact -- impossible worlds
            continue
        if any((fact in world) != value for fact, value in forced.items()):
            continue
        holds = True
        for constraint in gamma:
            if constraint.kind == "assert":
                holds = _parse_fact(pdb, constraint.text) in world
            elif constraint.kind == "deny":
                holds = _parse_fact(pdb, constraint.text) not in world
            else:
                truth = satisfies(world, domain, _as_sentence(pdb, constraint.text))
                holds = truth if constraint.kind == "require" else not truth
            if not holds:
                break
        if not holds:
            continue
        mass += probability
        if sentence is not None and satisfies(world, domain, sentence):
            joint += probability
    return joint, mass


def verify_against_brute_force():
    """Every conditioned artifact on the small instance matches enumeration."""
    pdb = _pdb(SMALL_DOMAIN)
    scenario = ConditionedScenario.compile(pdb, GAMMA)
    _, gamma_mass = _brute(pdb, GAMMA)
    worst = abs(scenario.gamma_probability - gamma_mass)
    checks = 1
    for spec in _atom_specs(pdb):
        joint, _ = _brute(pdb, GAMMA, spec)
        worst = max(worst, abs(scenario.posterior(spec).probability - joint / gamma_mass))
        checks += 1
    for fact, report in scenario.fact_posteriors().items():
        spec = f"{fact[0]}({', '.join(repr(v) for v in fact[1])})"
        joint, _ = _brute(pdb, GAMMA, spec)
        worst = max(worst, abs(report.posterior - joint / gamma_mass))
        checks += 1
    forceable = _forceable_atoms(pdb)
    query = forceable[0]
    for force_spec, value in ((forceable[1], True), (forceable[2], False)):
        force = {force_spec: value}
        joint, mass = _brute(pdb, GAMMA, query, force=force)
        derived = scenario.whatif(force)
        worst = max(worst, abs(derived.posterior(query).probability - joint / mass))
        checks += 1
    return checks, worst


# -- assertions (pytest benchmarks/bench_e19_conditioning.py) -----------------


def test_e19_scenario_reuse_amortizes():
    result = measure_reuse(total=50)
    assert result["speedup"] >= REUSE_FLOOR, (
        f"installed-scenario serving only {result['speedup']:.1f}× faster "
        f"than recompile-per-request (floor {REUSE_FLOOR}×)"
    )


def test_e19_whatif_cofactor_beats_fresh_conditioning():
    result = measure_whatif(count=10)
    assert result["speedup"] >= WHATIF_FLOOR, (
        f"cofactor what-if only {result['speedup']:.1f}× faster than fresh "
        f"conditioning (floor {WHATIF_FLOOR}×)"
    )


def test_e19_conditioned_answers_match_brute_force():
    checks, worst = verify_against_brute_force()
    assert checks >= 20
    assert worst <= TOL, f"worst brute-force deviation {worst}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small instances (CI smoke run)"
    )
    args = parser.parse_args()
    total = 50
    whatifs = 10 if args.quick else 20

    reuse = measure_reuse(total)
    whatif = measure_whatif(whatifs)
    checks, worst = verify_against_brute_force()

    per_reuse = (reuse["install_s"] + reuse["reuse_s"]) / total
    per_recompile = reuse["recompile_s"] / total
    print_table(
        f"E19a: one installed scenario vs recompiling Γ per request "
        f"(N={total} conditioned requests, domain n={DOMAIN})",
        ["serving strategy", "total", "per request", "speedup"],
        [
            (
                "recompile Γ per request",
                f"{reuse['recompile_s'] * 1e3:.0f}ms",
                f"{per_recompile * 1e3:.2f}ms",
                "1.0×",
            ),
            (
                "install once + serve (incl. install)",
                f"{(reuse['install_s'] + reuse['reuse_s']) * 1e3:.0f}ms",
                f"{per_reuse * 1e3:.2f}ms",
                f"{reuse['speedup']:.1f}×",
            ),
        ],
    )
    assert reuse["speedup"] >= REUSE_FLOOR, (
        f"scenario reuse must be ≥ {REUSE_FLOOR}×, got {reuse['speedup']:.1f}×"
    )

    print_table(
        f"E19b: what-if derivation ({whatif['whatifs']} scenarios)",
        ["derivation", "total", "per what-if", "speedup"],
        [
            (
                "fresh conditioning on Γ ∪ {±fact}",
                f"{whatif['fresh_s'] * 1e3:.0f}ms",
                f"{whatif['fresh_s'] / whatif['whatifs'] * 1e3:.2f}ms",
                "1.0×",
            ),
            (
                "cofactor of the compiled Γ (whatif)",
                f"{whatif['cofactor_s'] * 1e3:.0f}ms",
                f"{whatif['cofactor_s'] / whatif['whatifs'] * 1e3:.2f}ms",
                f"{whatif['speedup']:.1f}×",
            ),
        ],
    )
    assert whatif["speedup"] >= WHATIF_FLOOR, (
        f"cofactor what-if must be ≥ {WHATIF_FLOOR}×, got {whatif['speedup']:.1f}×"
    )

    print(
        f"brute-force agreement: {checks} conditioned answers on the "
        f"n={SMALL_DOMAIN} instance, worst |Δ| = {worst:.2e} (tolerance {TOL:g})"
    )
    assert worst <= TOL

    BENCH_RESULTS.update(
        {
            "reuse_speedup": round(reuse["speedup"], 2),
            "reuse_per_request_ms": round(per_reuse * 1e3, 3),
            "recompile_per_request_ms": round(per_recompile * 1e3, 3),
            "whatif_cofactor_speedup": round(whatif["speedup"], 2),
            "brute_force_checks": checks,
            "brute_force_worst_abs_error": worst,
        }
    )


if __name__ == "__main__":
    main()
