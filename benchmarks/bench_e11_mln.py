"""E11 — Sec. 3 / Prop. 3.1: MLNs as TIDs conditioned on constraints.

Regenerates the Manager/HighlyCompensated example (weight 3.9): direct MLN
semantics vs both TID encodings, including the erratum: the paper's prose
sets p(R) = 1/(w−1) = 1/2.9 ≈ 0.345, but that value is the *weight*; the
probability that makes Prop. 3.1 an identity is 1/w (cf. the appendix,
where weight(X₄) = 1/(w₄−1) ⇒ p = 1/w).
"""

import pytest

from repro.logic.parser import parse
from repro.mln.mln import MarkovLogicNetwork, SoftConstraint
from repro.mln.translate import Encoding, conditional_probability, mln_query_probability, mln_to_tid

from tables import print_table

DOMAIN = ("a", "b")
QUERIES = [
    "exists m. HighComp(m)",
    "Manager('a','b') & HighComp('a')",
    "forall m. forall e. (Manager(m,e) -> HighComp(m))",
    "exists m. exists e. Manager(m,e)",
]


def manager_mln(weight=3.9):
    return MarkovLogicNetwork(
        [SoftConstraint(weight, parse("Manager(m,e) -> HighComp(m)"))],
        domain=DOMAIN,
    )


def agreement_rows():
    mln = manager_mln()
    rows = []
    for text in QUERIES:
        sentence = parse(text)
        direct = mln.probability(sentence)
        via_or = mln_query_probability(mln, sentence, Encoding.OR)
        via_iff = mln_query_probability(mln, sentence, Encoding.IFF)
        rows.append(
            (
                text[:44],
                f"{direct:.8f}",
                f"{via_or:.8f}",
                f"{via_iff:.8f}",
                "ok"
                if abs(direct - via_or) < 1e-9 and abs(direct - via_iff) < 1e-9
                else "MISMATCH",
            )
        )
        assert abs(direct - via_or) < 1e-9
        assert abs(direct - via_iff) < 1e-9
    return rows


def erratum_rows():
    """Paper's 1/(w−1) as probability vs the verified 1/w."""
    mln = manager_mln()
    sentence = parse("exists m. HighComp(m)")
    target = mln.probability(sentence)
    rows = []
    import itertools

    from repro.core.tid import TupleIndependentDatabase
    from repro.logic.formulas import Atom, Or, forall_many
    from repro.logic.terms import Var

    for label, p_aux in (("1/(w-1) [paper prose]", 1 / 2.9), ("1/w [verified]", 1 / 3.9)):
        db = TupleIndependentDatabase()
        db.explicit_domain = frozenset(DOMAIN)
        for name, arity in (("Manager", 2), ("HighComp", 1)):
            for values in itertools.product(DOMAIN, repeat=arity):
                db.add_fact(name, values, 0.5)
        for values in itertools.product(DOMAIN, repeat=2):
            db.add_fact("Aux0", values, p_aux)
        m, e = Var("m"), Var("e")
        gamma = forall_many(
            (m, e),
            Or.of((Atom("Aux0", (m, e)), parse("Manager(m,e) -> HighComp(m)"))),
        )
        got = conditional_probability(db, sentence, gamma)
        rows.append((label, f"{p_aux:.4f}", f"{got:.8f}", f"{target:.8f}",
                     "ok" if abs(got - target) < 1e-9 else "off"))
    return rows


def test_e11_proposition_31_both_encodings():
    agreement_rows()


def test_e11_erratum_only_one_over_w_matches():
    rows = erratum_rows()
    assert rows[0][4] == "off"
    assert rows[1][4] == "ok"


def test_e11_translation_is_symmetric_database():
    encoded = mln_to_tid(manager_mln(), Encoding.OR)
    assert encoded.database.is_symmetric()


def lifted_scaling_rows(sizes=(2, 4, 8, 16)):
    """SlimShot route: lifted MLN inference via symmetric WFOMC."""
    import time

    from repro.mln.translate import mln_query_probability_symmetric

    sentence = parse("forall m. forall e. (Manager(m,e) -> HighComp(m))")
    rows = []
    for n in sizes:
        mln = MarkovLogicNetwork(
            [SoftConstraint(3.9, parse("Manager(m,e) -> HighComp(m)"))],
            domain=tuple(f"p{i}" for i in range(n)),
        )
        start = time.perf_counter()
        p = mln_query_probability_symmetric(mln, sentence)
        elapsed = time.perf_counter() - start
        tuples = n * n + n + n * n
        rows.append((n, tuples, f"{p:.6f}", f"{elapsed * 1000:.1f} ms"))
    return rows


def test_e11_lifted_mln_scaling():
    rows = lifted_scaling_rows(sizes=(2, 6))
    assert all(0.0 <= float(row[2]) <= 1.0 for row in rows)


@pytest.mark.benchmark(group="e11-mln")
def test_e11_lifted_mln_domain10(benchmark):
    from repro.mln.translate import mln_query_probability_symmetric

    mln = MarkovLogicNetwork(
        [SoftConstraint(3.9, parse("Manager(m,e) -> HighComp(m)"))],
        domain=tuple(f"p{i}" for i in range(10)),
    )
    sentence = parse("exists m. HighComp(m)")

    def run():
        return mln_query_probability_symmetric(mln, sentence)

    assert 0.0 <= benchmark(run) <= 1.0


@pytest.mark.benchmark(group="e11-mln")
def test_e11_translated_query(benchmark):
    mln = manager_mln()
    sentence = parse("exists m. HighComp(m)")

    def run():
        return mln_query_probability(mln, sentence, Encoding.IFF)

    assert 0.0 <= benchmark(run) <= 1.0


@pytest.mark.benchmark(group="e11-mln")
def test_e11_direct_mln(benchmark):
    mln = manager_mln()
    sentence = parse("exists m. HighComp(m)")
    result = benchmark(mln.probability, sentence)
    assert 0.0 <= result <= 1.0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows_agree = agreement_rows()
    rows_erratum = erratum_rows()
    rows_lifted = lifted_scaling_rows()
    print_table(
        "E11a: Prop. 3.1 — p_MLN(Q) vs p_D(Q|Γ) (w = 3.9, domain = 2)",
        ["query", "direct MLN", "or-encoding", "iff-encoding", "status"],
        rows_agree,
    )
    print_table(
        "E11b: erratum — auxiliary probability 1/(w−1) vs 1/w",
        ["p(Aux) formula", "value", "p_D(Q|Γ)", "p_MLN(Q)", "status"],
        rows_erratum,
    )
    print_table(
        "E11c: lifted MLN inference (symmetric WFOMC; enumeration infeasible past n=2)",
        ["domain n", "possible tuples", "p(∀ rule)", "time"],
        rows_lifted,
    )
    BENCH_RESULTS.update(
        {
            "agreement_queries": len(rows_agree),
            "lifted_max_domain": rows_lifted[-1][0],
        }
    )


if __name__ == "__main__":
    main()
