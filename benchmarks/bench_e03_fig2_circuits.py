"""E3 — Figure 2: the example FBDD and decision-DNNF.

Regenerates both circuits of Figure 2, validates their defining properties
(read-once paths; decomposable ∧), and reports size and model counts.
"""

import itertools

import pytest

from repro.booleans.expr import evaluate
from repro.kc.fig2 import fig2a_fbdd, fig2a_formula, fig2b_decision_dnnf, fig2b_formula
from repro.wmc.brute import model_count

from tables import print_table


def circuit_rows():
    rows = []
    fbdd, _ = fig2a_fbdd()
    rows.append(
        (
            "Fig 2(a) FBDD",
            "(~X)YZ | XY | XZ",
            fbdd.size(),
            fbdd.edge_count(),
            model_count(fig2a_formula(), variables=range(3)),
            fbdd.check_fbdd(),
        )
    )
    ddnnf, _ = fig2b_decision_dnnf()
    rows.append(
        (
            "Fig 2(b) dec-DNNF",
            "(~X)YZU | XYZ | XZU",
            ddnnf.size(),
            ddnnf.edge_count(),
            model_count(fig2b_formula(), variables=range(4)),
            ddnnf.check_decision_dnnf(),
        )
    )
    return rows


def test_e03_fig2a_semantics():
    circuit, _ = fig2a_fbdd()
    f = fig2a_formula()
    for bits in itertools.product((False, True), repeat=3):
        assignment = dict(enumerate(bits))
        assert circuit.evaluate(assignment) == evaluate(f, assignment)


def test_e03_fig2b_semantics_and_validity():
    circuit, _ = fig2b_decision_dnnf()
    f = fig2b_formula()
    for bits in itertools.product((False, True), repeat=4):
        assignment = dict(enumerate(bits))
        assert circuit.evaluate(assignment) == evaluate(f, assignment)
    assert circuit.check_decision_dnnf()


def test_e03_model_counts():
    assert model_count(fig2a_formula(), variables=range(3)) == 4
    # models: 0111, 1110, 1111, 1011
    assert model_count(fig2b_formula(), variables=range(4)) == 4


@pytest.mark.benchmark(group="e03-fig2")
def test_e03_circuit_wmc(benchmark):
    circuit, _ = fig2b_decision_dnnf()
    probabilities = {0: 0.5, 1: 0.4, 2: 0.7, 3: 0.2}
    result = benchmark(circuit.wmc, probabilities)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="e03-fig2")
def test_e03_circuit_construction(benchmark):
    circuit, _ = benchmark(fig2b_decision_dnnf)
    assert circuit.size() > 0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows = circuit_rows()
    print_table(
        "E3: Figure 2 circuits",
        ["circuit", "formula", "nodes", "edges", "#models", "valid"],
        rows,
    )
    BENCH_RESULTS.update({"circuits_checked": len(rows)})


if __name__ == "__main__":
    main()
