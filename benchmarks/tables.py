"""Tiny table printer shared by the benchmark harness."""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))
