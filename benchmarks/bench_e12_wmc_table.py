"""E12 — Appendix Figure 3: weights, probabilities, and factors.

Regenerates the full eight-row table for F = (X₁∨X₂)(X₁∨X₃)(X₂∨X₃): per
assignment, F's value, p(θ), weight(θ), the factor G = (X₁ ⇒ X₂), and
weight'(θ); then checks the two closed forms the appendix derives:
weight(F) = w₂w₃ + w₁w₃ + w₁w₂ + w₁w₂w₃ and Z = Π(1 + wᵢ).
"""

import itertools

import pytest

from repro.booleans.expr import band, bnot, bor, bvar, evaluate
from repro.mln.markov_network import BooleanMarkovNetwork, Factor
from repro.wmc.brute import weighted_model_count

from tables import print_table

X1, X2, X3 = bvar(1), bvar(2), bvar(3)
F = band(bor(X1, X2), bor(X1, X3), bor(X2, X3))
G = bor(bnot(X1), X2)  # X1 ⇒ X2

W = {1: 2.0, 2: 3.0, 3: 5.0}
W4 = 1.5
P = {i: W[i] / (1 + W[i]) for i in W}


def figure3_rows():
    rows = []
    network = BooleanMarkovNetwork(dict(W), [Factor(W4, G)])
    for bits in itertools.product((0, 1), repeat=3):
        theta = {i + 1: bool(b) for i, b in enumerate(bits)}
        f_value = int(evaluate(F, theta))
        p_theta = 1.0
        for i in (1, 2, 3):
            p_theta *= P[i] if theta[i] else 1 - P[i]
        weight = 1.0
        for i in (1, 2, 3):
            if theta[i]:
                weight *= W[i]
        g_value = int(evaluate(G, theta))
        weight_prime = network.weight_of(theta)
        rows.append(
            (
                f"{bits[0]} {bits[1]} {bits[2]}",
                f_value,
                f"{p_theta:.6f}",
                f"{weight:g}",
                g_value,
                f"{weight_prime:g}",
            )
        )
    return rows


def test_e12_weight_closed_form():
    weight, partition = weighted_model_count(F, W)
    expected = W[2] * W[3] + W[1] * W[3] + W[1] * W[2] + W[1] * W[2] * W[3]
    assert abs(weight - expected) < 1e-9
    assert abs(partition - (1 + W[1]) * (1 + W[2]) * (1 + W[3])) < 1e-9


def test_e12_probability_equals_weight_over_z():
    weight, partition = weighted_model_count(F, W)
    from repro.wmc.brute import brute_force_wmc

    assert abs(weight / partition - brute_force_wmc(F, P)) < 1e-9


def test_e12_factored_weight_closed_form():
    # appendix: weight'(F) = w2w3w4 + w1w3 + w1w2w4 + w1w2w3w4
    network = BooleanMarkovNetwork(dict(W), [Factor(W4, G)])
    expected = (
        W[2] * W[3] * W4
        + W[1] * W[3]
        + W[1] * W[2] * W4
        + W[1] * W[2] * W[3] * W4
    )
    assert abs(network.weight_of_formula(F) - expected) < 1e-9


def test_e12_table_has_four_models():
    rows = figure3_rows()
    assert sum(row[1] for row in rows) == 4


@pytest.mark.benchmark(group="e12-wmc")
def test_e12_weighted_model_count(benchmark):
    weight, partition = benchmark(weighted_model_count, F, W)
    assert weight > 0 and partition > 0


@pytest.mark.benchmark(group="e12-wmc")
def test_e12_factored_network(benchmark):
    network = BooleanMarkovNetwork(dict(W), [Factor(W4, G)])
    result = benchmark(network.weight_of_formula, F)
    assert result > 0


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    print_table(
        f"E12: Figure 3 table (w = {tuple(W.values())}, w4 = {W4})",
        ["X1 X2 X3", "F", "p(θ)", "weight(θ)", "G", "weight'(θ)"],
        figure3_rows(),
    )
    weight, partition = weighted_model_count(F, W)
    print(f"\nweight(F) = {weight:g}   Z = {partition:g}   p(F) = {weight / partition:.6f}")
    BENCH_RESULTS.update(
        {"weight_F": weight, "partition_Z": partition, "p_F": weight / partition}
    )


if __name__ == "__main__":
    main()
