"""E4 — Theorem 4.3: the dichotomy for (self-join-free) queries.

Regenerates the classification table of the paper's query gallery — decided
purely from syntax — and validates each PTIME verdict by comparing lifted
inference with the possible-worlds oracle on random databases.
"""

import pytest

from repro.lifted.engine import lifted_probability
from repro.lifted.errors import NonLiftableError
from repro.lifted.safety import Complexity, cq_is_safe, decide_safety
from repro.logic.cq import parse_cq, parse_ucq
from repro.workloads.generators import random_tid

from tables import print_table

GALLERY = [
    ("R(x)", "PTIME"),
    ("S(x,y)", "PTIME"),
    ("R(x), S(x,y)", "PTIME"),
    ("R(x), S(x,y), U(x)", "PTIME"),
    ("R(x), T(y)", "PTIME"),
    ("R(x), S(x,y), T(y)", "#P-hard"),  # H0's CQ (Thm 2.2)
    ("S(x,y), T(y), U(x)", "#P-hard"),
    ("R(x,y), R(y,z)", "#P-hard"),  # hierarchical yet hard (self-join)
    ("R(x), S(x,y) | T(u), S(u,v)", "PTIME"),  # Q_J
    ("R(x), S(x,y) | S(u,v), T(v)", "#P-hard"),  # H1
]

SCHEMA = (("R", 1), ("S", 2), ("T", 1), ("U", 1))


def parse_any(text):
    return parse_ucq(text) if "|" in text else parse_cq(text)


def classification_rows():
    rows = []
    for text, expected in GALLERY:
        query = parse_any(text)
        verdict = decide_safety(query)
        hierarchical = (
            all(not q.has_self_joins() for q in getattr(query, "disjuncts", [query]))
            and all(q.is_hierarchical() for q in getattr(query, "disjuncts", [query]))
        )
        rows.append(
            (text, verdict.complexity.value, expected, "yes" if hierarchical else "no")
        )
        assert verdict.complexity.value == expected, text
    return rows


def test_e04_classifications_match_theory():
    classification_rows()


def test_e04_hierarchy_criterion_equals_engine_for_sjf_cqs():
    for text, _ in GALLERY:
        if "|" in text:
            continue
        query = parse_cq(text)
        if query.has_self_joins():
            continue
        assert cq_is_safe(query) == decide_safety(query).is_safe, text


def test_e04_ptime_verdicts_evaluate_correctly():
    schema_db = random_tid(3, 3, schema=SCHEMA)
    for text, expected in GALLERY:
        if expected != "PTIME" or "R(x,y)" in text:
            continue
        query = parse_any(text)
        got = lifted_probability(query, schema_db)
        want = schema_db.brute_force_probability(query.to_formula())
        assert abs(got - want) < 1e-9, text


def test_e04_hard_verdicts_really_block_the_engine():
    db = random_tid(4, 2, schema=SCHEMA)
    for text, expected in GALLERY:
        if expected != "#P-hard" or "R(x,y)" in text:
            continue
        with pytest.raises(NonLiftableError):
            lifted_probability(parse_any(text), db)


@pytest.mark.benchmark(group="e04-dichotomy")
def test_e04_decide_safety_cq(benchmark):
    query = parse_cq("R(x), S(x,y), T(y)")
    verdict = benchmark(decide_safety, query)
    assert verdict.complexity is Complexity.SHARP_P_HARD


@pytest.mark.benchmark(group="e04-dichotomy")
def test_e04_decide_safety_ucq(benchmark):
    query = parse_ucq("R(x), S(x,y) | T(u), S(u,v)")
    verdict = benchmark(decide_safety, query)
    assert verdict.complexity is Complexity.PTIME


# Filled by main() for run_all_tables.py / BENCH_results.json.
BENCH_RESULTS = {}


def main():
    rows = classification_rows()
    print_table(
        "E4: Theorem 4.3 dichotomy classification",
        ["query", "decided", "paper", "hierarchical"],
        rows,
    )
    # classification_rows asserts every verdict matches the paper's.
    BENCH_RESULTS.update({"queries_classified": len(rows), "matches_paper": True})


if __name__ == "__main__":
    main()
