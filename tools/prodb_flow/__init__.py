"""prodb-flow: whole-program concurrency analysis for the prodb engine.

Where :mod:`prodb_lint` checks one file at a time with syntactic rules,
this package builds a *program model* — every module under the scanned
roots, a call graph, per-class attribute types, every lock construction
site — and runs three interprocedural verification passes over it:

* **lockset** (:mod:`prodb_flow.locks`, PF1xx) — walks every reachable
  acquisition path (``with`` nesting plus helper indirection through the
  call graph) and proves it rank-monotonic against the ``RANK_*`` order
  declared in ``repro.sanitize``; flags raw ``threading`` locks that
  escape the rank system and ``await`` while a lock is held;
* **event-loop confinement** (:mod:`prodb_flow.loops`, PF2xx) — taints
  loop-owned state (``asyncio.StreamWriter`` / ``Task`` / ``Future``
  typed attributes, containers of such, ``# prodb-lint: loop-owned``
  annotations), classifies every function as loop- and/or
  thread-context by propagating from entry points (``async def``,
  ``Thread(target=...)``, ``run_in_executor``), and reports touches of
  loop-owned state from thread context that are not routed through
  ``call_soon_threadsafe`` / ``run_coroutine_threadsafe``;
* **shm/pickle boundary** (:mod:`prodb_flow.shmcheck`, PF3xx) — taints
  the results of ``attach()`` (read-only shared-memory shards) and
  reports mutating operations reachable from them, and checks that
  objects crossing the worker-pool pickle boundary (queue ``put``,
  ``Process`` args/target) come from the picklable allowlist.

Findings carry related source locations (both ends of an inversion, the
thread-entry witness of a confinement breach) and can be suppressed with
the shared pragma grammar (``# prodb-lint: disable=PF101 -- why``);
a PF suppression *without* a ``--`` justification is itself a finding
(PF000). Output: text, SARIF 2.1.0 (``--sarif``), and a DOT dump of the
observed lock-order graph (``--emit-lockgraph``).

Run it as ``PYTHONPATH=tools python -m prodb_flow src``.
"""

from __future__ import annotations

#: The rule catalog. Stable ids; docs/dev.md mirrors this table.
RULES: dict[str, str] = {
    "PF000": "PF-rule suppression without a -- justification",
    "PF101": "lock-order inversion: acquisition rank does not increase",
    "PF102": "raw threading lock escapes the rank system",
    "PF103": "await while holding a lock",
    "PF104": "RankedLock rank not statically resolvable",
    "PF201": "loop-owned state touched from thread context",
    "PF202": "loop-owned object passed into a thread entry point",
    "PF301": "mutation of data reachable from attached shm shards",
    "PF302": "unpicklable object crosses the worker pickle boundary",
}

from .model import Program, build_program  # noqa: E402
from .report import FlowFinding  # noqa: E402

__all__ = ["FlowFinding", "Program", "RULES", "analyze", "build_program"]


def analyze(program: "Program") -> list["FlowFinding"]:
    """Run all three passes over *program*; returns sorted findings."""
    from .locks import LocksetPass
    from .loops import ConfinementPass
    from .shmcheck import BoundaryPass

    findings: list[FlowFinding] = []
    findings.extend(LocksetPass(program).run())
    findings.extend(ConfinementPass(program).run())
    findings.extend(BoundaryPass(program).run())
    findings.extend(program.pragma_findings())
    deduped = {
        (f.code, f.path, f.line, f.col, f.message): f for f in findings
    }
    return sorted(
        deduped.values(), key=lambda f: (f.path, f.line, f.col, f.code)
    )
