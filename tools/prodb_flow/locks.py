"""Static lockset analysis: rank-monotonicity over every acquisition path.

The pass interprets each function body in structured form — its CFG as
the nesting of ``with`` / branches / loops, which is exact for the
acquisition discipline this tree uses (locks are only ever held for the
extent of a ``with`` block) — and carries the *lockset*: the ordered
chain of acquisitions currently held, each tagged with its source
location. At every call that resolves in the program model, the callee
is re-interpreted under the caller's lockset, so a rank inversion hidden
behind helper indirection is found with the full acquisition chain.

Checks (creation-site rules first, then the path walk):

* **PF102** — a raw ``threading`` primitive constructed inside the
  ranked scope (``src/repro/{engine,server,obs,booleans,relational}``,
  or anywhere in a non-repro tree that does not itself define
  ``RankedLock``) without a ``# prodb-lint: rank=<N>`` annotation.
* **PF104** — a ``RankedLock`` whose rank argument cannot be resolved
  to an integer against the discovered ``RANK_*`` table: the rank proof
  cannot cover it.
* **PF101** — an acquisition whose rank does not strictly increase over
  the top of the held chain. Equal-rank acquisition is allowed only
  through a *may-alias* lock (the ``lock if lock is not None else
  RankedLock(...)`` idiom of ``obs.metrics``, where the runtime object
  is the caller's own reentrant lock); re-acquisition of the same
  non-reentrant lock is reported as a self-deadlock.
* **PF103** — an ``await`` while the lockset is non-empty: parking a
  coroutine with a lock held stalls every other task that needs it.

Every edge of every observed acquisition chain is also recorded for the
``--emit-lockgraph`` DOT dump; a clean tree's graph is a DAG whose edges
all point from lower to higher rank.

Approximations, chosen to under- rather than over-report: bare
``.acquire()`` calls are checked at the call site but not tracked as
held (the tree uses ``with`` exclusively); unresolvable calls are not
traversed; lock identity is per construction site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from .model import FunctionInfo, LockInfo, Program
from .report import FlowFinding, LockEdge, Related

#: Interprocedural depth cap — far above any real chain in this tree,
#: it only bounds pathological fixture inputs.
MAX_DEPTH = 40

_RANKED_SCOPE_DIRS = {"condition", "engine", "server", "obs", "booleans", "relational"}


@dataclass(frozen=True)
class Acq:
    """One held acquisition: the lock plus where it was taken."""

    lock: LockInfo
    relpath: str
    line: int
    fn: str  # qualname of the acquiring function


def _chain_text(held: tuple[Acq, ...], new: Optional[Acq] = None) -> str:
    steps = [
        f"{acq.lock.name}({acq.lock.rank}) @ {acq.relpath}:{acq.line}"
        for acq in (held + ((new,) if new is not None else ()))
    ]
    return " -> ".join(steps)


class LocksetPass:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.findings: list[FlowFinding] = []
        self.edges: list[LockEdge] = []
        self.lock_nodes: dict[str, tuple[str, Optional[int]]] = {}
        self._visited: set[tuple[str, tuple[str, ...]]] = set()
        self._reported: set[tuple] = set()

    # -- entry ----------------------------------------------------------------

    def run(self) -> list[FlowFinding]:
        self._creation_rules()
        for fn in self.program.all_functions():
            self._walk(fn, held=(), stack=())
        return self.findings

    def _emit(
        self,
        code: str,
        module,
        node_line: int,
        col: int,
        message: str,
        related: tuple[Related, ...] = (),
        last_line: Optional[int] = None,
    ) -> None:
        if module.pragmas.is_disabled(code, node_line, last_line):
            return
        self.findings.append(
            FlowFinding(code, module.relpath, node_line, col, message, related)
        )

    # -- creation-site rules ---------------------------------------------------

    def _all_locks(self):
        for module in self.program.modules.values():
            for lock in module.module_locks.values():
                yield module, lock
            for fn in module.functions.values():
                for lock in fn.local_locks.values():
                    yield module, lock
            for cls in module.classes.values():
                for lock in cls.attr_locks.values():
                    yield module, lock
                for fn in cls.methods.values():
                    for lock in fn.local_locks.values():
                        yield module, lock

    def _creation_rules(self) -> None:
        for module, lock in self._all_locks():
            self.lock_nodes[lock.key] = (lock.name, lock.rank)
            if lock.raw and lock.rank is None and self._pf102_scope(module):
                self._emit(
                    "PF102", module, lock.line, 0,
                    f"raw threading lock {lock.key!r} escapes the rank "
                    "system; use RankedLock(RANK_*, ...) or annotate the "
                    "line with '# prodb-lint: rank=<N> -- why'",
                )
            if not lock.raw and lock.rank is None:
                self._emit(
                    "PF104", module, lock.line, 0,
                    f"RankedLock {lock.key!r} has a rank that cannot be "
                    "resolved statically; use a RANK_* constant or an "
                    "integer literal so the rank proof can cover it",
                )

    def _pf102_scope(self, module) -> bool:
        if any(
            isinstance(node, ast.ClassDef) and node.name == "RankedLock"
            for node in module.tree.body
        ):
            return False  # the lock library itself wraps a raw primitive
        parts = module.relpath.split("/")
        if parts[0] == "src":
            return (
                len(parts) > 3
                and parts[1] == "repro"
                and parts[2] in _RANKED_SCOPE_DIRS
            )
        return True

    # -- the path walk ---------------------------------------------------------

    def _walk(
        self, fn: FunctionInfo, held: tuple[Acq, ...], stack: tuple[str, ...]
    ) -> None:
        if len(stack) > MAX_DEPTH or fn.qualname in stack:
            return
        key = (fn.qualname, tuple(acq.lock.key for acq in held))
        if key in self._visited:
            return
        self._visited.add(key)
        node = fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._exec_body(node.body, fn, held, stack + (fn.qualname,))

    def _exec_body(
        self,
        stmts: list[ast.stmt],
        fn: FunctionInfo,
        held: tuple[Acq, ...],
        stack: tuple[str, ...],
    ) -> None:
        for stmt in stmts:
            self._exec(stmt, fn, held, stack)

    def _exec(
        self,
        stmt: ast.stmt,
        fn: FunctionInfo,
        held: tuple[Acq, ...],
        stack: tuple[str, ...],
    ) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current = held
            for item in stmt.items:
                self._visit_expr(item.context_expr, fn, current, stack)
                lock = self._lock_of_expr(item.context_expr, fn)
                if lock is not None:
                    acq = Acq(
                        lock, fn.module.relpath, item.context_expr.lineno,
                        fn.qualname,
                    )
                    self._check_acquire(acq, fn, current)
                    current = current + (acq,)
            self._exec_body(stmt.body, fn, current, stack)
        elif isinstance(stmt, ast.If):
            self._visit_expr(stmt.test, fn, held, stack)
            self._exec_body(stmt.body, fn, held, stack)
            self._exec_body(stmt.orelse, fn, held, stack)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter, fn, held, stack)
            self._exec_body(stmt.body, fn, held, stack)
            self._exec_body(stmt.orelse, fn, held, stack)
        elif isinstance(stmt, ast.While):
            self._visit_expr(stmt.test, fn, held, stack)
            self._exec_body(stmt.body, fn, held, stack)
            self._exec_body(stmt.orelse, fn, held, stack)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body, fn, held, stack)
            for handler in stmt.handlers:
                self._exec_body(handler.body, fn, held, stack)
            self._exec_body(stmt.orelse, fn, held, stack)
            self._exec_body(stmt.finalbody, fn, held, stack)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested defs execute later, not here
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child, fn, held, stack)

    def _visit_expr(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        held: tuple[Acq, ...],
        stack: tuple[str, ...],
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Await) and held:
                top = held[-1]
                key = ("PF103", fn.module.relpath, node.lineno)
                if key not in self._reported:
                    self._reported.add(key)
                    self._emit(
                        "PF103", fn.module, node.lineno, node.col_offset,
                        f"await while holding lock {top.lock.name!r} "
                        f"(rank {top.lock.rank}) acquired at "
                        f"{top.relpath}:{top.line}; a parked coroutine must "
                        "not hold engine locks",
                        related=(
                            Related(top.relpath, top.line, "lock acquired here"),
                        ),
                    )
            elif isinstance(node, ast.Call):
                self._visit_call(node, fn, held, stack)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                self._visit_property(node, fn, held, stack)

    def _visit_call(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        held: tuple[Acq, ...],
        stack: tuple[str, ...],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "acquire", "release",
        ):
            lock = self._lock_of_expr(func.value, fn)
            if lock is not None:
                if func.attr == "acquire":
                    acq = Acq(lock, fn.module.relpath, call.lineno, fn.qualname)
                    self._check_acquire(acq, fn, held)
                return
        callee = self.program.resolve_call(call, fn)
        if callee is not None and not callee.is_property:
            self._walk(callee, held, stack)

    def _visit_property(
        self,
        node: ast.Attribute,
        fn: FunctionInfo,
        held: tuple[Acq, ...],
        stack: tuple[str, ...],
    ) -> None:
        cls = None
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            cls = fn.cls
        else:
            cls = self.program.resolve_class(
                self.program.infer_type(node.value, fn)
            )
        if cls is None:
            return
        method = self.program.lookup_method(cls, node.attr)
        if method is not None and method.is_property:
            self._walk(method, held, stack)

    def _lock_of_expr(
        self, expr: ast.expr, fn: FunctionInfo
    ) -> Optional[LockInfo]:
        if isinstance(expr, ast.Name):
            if expr.id in fn.local_locks:
                return fn.local_locks[expr.id]
            return fn.module.module_locks.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and fn.cls is not None
            ):
                return self.program.lookup_attr_lock(fn.cls, expr.attr)
            cls = self.program.resolve_class(
                self.program.infer_type(expr.value, fn)
            )
            if cls is not None:
                return self.program.lookup_attr_lock(cls, expr.attr)
        return None

    # -- acquisition checking --------------------------------------------------

    def _check_acquire(
        self, acq: Acq, fn: FunctionInfo, held: tuple[Acq, ...]
    ) -> None:
        lock = acq.lock
        self.lock_nodes.setdefault(lock.key, (lock.name, lock.rank))
        if not held:
            return
        top = held[-1]
        violation = False
        message = ""
        if any(prev.lock.key == lock.key for prev in held):
            if not lock.reentrant:
                violation = True
                message = (
                    f"re-acquisition of non-reentrant lock {lock.name!r} "
                    f"(rank {lock.rank}) already held — self-deadlock"
                )
        elif top.lock.rank is not None and lock.rank is not None:
            if lock.rank < top.lock.rank:
                violation = True
            elif lock.rank == top.lock.rank and not (
                lock.may_alias or top.lock.may_alias
            ):
                violation = True
            if violation:
                message = (
                    f"lock-order inversion: acquiring {lock.name!r} "
                    f"(rank {lock.rank}) while holding {top.lock.name!r} "
                    f"(rank {top.lock.rank}) acquired at "
                    f"{top.relpath}:{top.line}; ranks must strictly "
                    f"increase; chain: {_chain_text(held, acq)}"
                )
        self.edges.append(
            LockEdge(
                top.lock.key, lock.key, acq.relpath, acq.line,
                violation=violation,
            )
        )
        if not violation:
            return
        dedupe = ("PF101", acq.relpath, acq.line, lock.key, top.lock.key)
        if dedupe in self._reported:
            return
        self._reported.add(dedupe)
        related = tuple(
            Related(
                prev.relpath, prev.line,
                f"holds {prev.lock.name!r} (rank {prev.lock.rank}), "
                f"acquired in {prev.fn}",
            )
            for prev in held
        )
        self._emit(
            "PF101", fn.module, acq.line, 0, message, related=related,
        )
