"""Event-loop confinement: a real taint pass replacing PL002's syntax check.

Two dataflow computations, then a check:

1. **Loop-owned state.** A class attribute is loop-owned when its
   declaration carries ``# prodb-lint: loop-owned``, or when its type
   annotation references ``asyncio.StreamWriter`` / ``Task`` / ``Future``
   / ``StreamReader`` — directly, inside a container
   (``Set[asyncio.StreamWriter]``), or through one level of class
   indirection (``Dict[tuple, _Inflight]`` where ``_Inflight`` holds an
   ``asyncio.Future`` field). Annotation roots are resolved through the
   import map, so ``concurrent.futures.Future`` (the worker pool's
   pending table) is *not* tainted while ``asyncio.Future`` is.

2. **Execution contexts.** Every function gets a set of contexts it can
   run in, propagated to a fixpoint over the call graph from seeds:
   ``async def`` bodies and callbacks registered via ``call_soon*`` /
   ``add_done_callback`` / ``run_until_complete`` /
   ``run_coroutine_threadsafe`` run in **loop** context; ``Thread``
   targets and callables handed to ``Executor.submit`` /
   ``loop.run_in_executor`` run in **thread** context. A plain call
   propagates the caller's contexts into the callee; registration
   arguments get the context of where the runtime will *invoke* them,
   not where they are registered — which is exactly the distinction the
   syntactic PL002 cannot make.

The check: a touch of loop-owned state inside a function that can run in
thread context is **PF201**, unless the touching expression is an
argument of ``call_soon_threadsafe`` / ``run_coroutine_threadsafe`` (the
sanctioned cross-thread routes). Passing a loop-owned object *into* a
thread entry point (``Thread(args=...)``, ``submit``,
``run_in_executor``) is **PF202**. ``__init__``/``__post_init__`` are
exempt: construction happens before the object is shared.

Functions never reached from any seed have no context and are not
flagged — a public sync API callable from anywhere is the dynamic race
detector's territory (``repro.sanitize``), not this pass's.
"""

from __future__ import annotations

import ast
from typing import Optional

from .model import LOOP_OWNED_TYPES, ClassInfo, FunctionInfo, Program
from .report import FlowFinding, Related

LOOP = "loop"
THREAD = "thread"

#: Receiver methods whose callable argument runs on the event loop.
_LOOP_REGISTRARS = {
    "add_done_callback": 0,
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "call_later": 1,
    "call_at": 1,
}

#: The sanctioned thread→loop routing calls (PF201 exemption).
_THREADSAFE_ROUTES = {"call_soon_threadsafe", "run_coroutine_threadsafe"}

_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}


class ConfinementPass:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.findings: list[FlowFinding] = []
        #: qualname -> {context: (reason, relpath, line)}
        self.contexts: dict[str, dict[str, tuple[str, str, int]]] = {}
        self._reported: set[tuple] = set()

    def run(self) -> list[FlowFinding]:
        self._taint_classes()
        self._compute_contexts()
        for fn in self.program.all_functions():
            ctx = self.contexts.get(fn.qualname, {})
            if THREAD in ctx and fn.name not in _CONSTRUCTORS:
                self._check_touches(fn, ctx[THREAD])
            self._check_handoffs(fn)
        return self.findings

    # -- loop-owned attribute taint -------------------------------------------

    def _annotation_is_loop_owned(
        self, annotation: Optional[ast.expr], cls: ClassInfo, deep: bool
    ) -> bool:
        for ref in self.program.annotation_refs(annotation, cls.module):
            if ref in LOOP_OWNED_TYPES:
                return True
            if deep:
                inner = self.program.resolve_class(ref)
                if inner is not None and self._class_is_loop_bound(inner):
                    return True
        return False

    def _class_is_loop_bound(self, cls: ClassInfo) -> bool:
        return any(
            self._annotation_is_loop_owned(ann, cls, deep=False)
            for ann in cls.attr_annotations.values()
        )

    def _taint_classes(self) -> None:
        for cls in self.program.classes.values():
            for attr, annotation in cls.attr_annotations.items():
                if attr in cls.loop_owned:
                    continue  # pragma already recorded the reason
                if self._annotation_is_loop_owned(annotation, cls, deep=True):
                    line = getattr(annotation, "lineno", cls.node.lineno)
                    cls.loop_owned[attr] = (
                        f"typed loop-owned at {cls.module.relpath}:{line}"
                    )

    def _loop_owned_reason(
        self, cls: Optional[ClassInfo], attr: str
    ) -> Optional[str]:
        if cls is None:
            return None
        for klass in self.program.mro(cls):
            if attr in klass.loop_owned:
                return klass.loop_owned[attr]
        return None

    # -- context propagation ----------------------------------------------------

    def _add_context(
        self,
        fn: Optional[FunctionInfo],
        ctx: str,
        reason: tuple[str, str, int],
        worklist: list[FunctionInfo],
    ) -> None:
        if fn is None:
            return
        slot = self.contexts.setdefault(fn.qualname, {})
        if ctx not in slot:
            slot[ctx] = reason
            worklist.append(fn)

    def _callable_targets(
        self, expr: ast.expr, fn: FunctionInfo
    ) -> list[FunctionInfo]:
        """Functions a callable-valued expression may denote."""
        if isinstance(expr, ast.Lambda):
            out = []
            for node in ast.walk(expr.body):
                if isinstance(node, ast.Call):
                    resolved = self.program.resolve_call(node, fn)
                    if resolved is not None:
                        out.append(resolved)
            return out
        if isinstance(expr, ast.Call):
            # ``run_until_complete(self.server.start())``: the coroutine
            # *call* is the thing the loop will drive.
            resolved = self.program.resolve_call(expr, fn)
            return [resolved] if resolved is not None else []
        resolved = self.program.resolve_callable(expr, fn)
        return [resolved] if resolved is not None else []

    def _registration_seeds(
        self, fn: FunctionInfo, worklist: list[FunctionInfo]
    ) -> None:
        module = fn.module
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            name = func.id if isinstance(func, ast.Name) else None
            where = (module.relpath, node.lineno)
            if attr in _LOOP_REGISTRARS or name in _LOOP_REGISTRARS:
                index = _LOOP_REGISTRARS[attr or name or ""]
                if len(node.args) > index:
                    for target in self._callable_targets(node.args[index], fn):
                        self._add_context(
                            target, LOOP,
                            (f"loop callback registered via {attr or name}",)
                            + where,
                            worklist,
                        )
            elif attr in ("run_until_complete", "run_coroutine_threadsafe") or (
                name == "run_coroutine_threadsafe"
            ):
                if node.args:
                    for target in self._callable_targets(node.args[0], fn):
                        self._add_context(
                            target, LOOP,
                            ("coroutine driven on the event loop",) + where,
                            worklist,
                        )
            elif attr == "run_in_executor":
                if len(node.args) > 1:
                    for target in self._callable_targets(node.args[1], fn):
                        self._add_context(
                            target, THREAD,
                            ("executor target via run_in_executor",) + where,
                            worklist,
                        )
            elif attr == "submit":
                receiver = self.program.infer_type(func.value, fn) or ""
                if receiver.split(".")[-1].endswith("Executor") and node.args:
                    for target in self._callable_targets(node.args[0], fn):
                        self._add_context(
                            target, THREAD,
                            ("executor target via submit",) + where,
                            worklist,
                        )
            else:
                dotted = self.program.canonical(
                    self.program._dotted_of(func, module)
                )
                if dotted == "threading.Thread":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            for target in self._callable_targets(kw.value, fn):
                                self._add_context(
                                    target, THREAD,
                                    ("Thread target",) + where,
                                    worklist,
                                )

    def _compute_contexts(self) -> None:
        worklist: list[FunctionInfo] = []
        for fn in self.program.all_functions():
            if fn.is_async:
                line = getattr(fn.node, "lineno", 1)
                self._add_context(
                    fn, LOOP,
                    ("async def runs on the event loop", fn.module.relpath, line),
                    worklist,
                )
            self._registration_seeds(fn, worklist)
        while worklist:
            fn = worklist.pop()
            ctx = dict(self.contexts.get(fn.qualname, {}))
            if not ctx:
                continue
            overrides = self._override_calls(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call) or id(node) in overrides:
                    continue
                callee = self.program.resolve_call(node, fn)
                if callee is None:
                    continue
                for kind, reason in ctx.items():
                    self._add_context(callee, kind, reason, worklist)

    def _override_calls(self, fn: FunctionInfo) -> set[int]:
        """Call nodes that are *registration arguments*, not executions."""
        out: set[int] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            name = func.id if isinstance(func, ast.Name) else None
            if (
                attr in ("run_until_complete", "run_coroutine_threadsafe")
                or name == "run_coroutine_threadsafe"
            ) and node.args:
                for sub in ast.walk(node.args[0]):
                    if isinstance(sub, ast.Call):
                        out.add(id(sub))
        return out

    # -- checks -----------------------------------------------------------------

    def _owner_class(
        self, node: ast.Attribute, fn: FunctionInfo
    ) -> Optional[ClassInfo]:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return fn.cls
        return self.program.resolve_class(
            self.program.infer_type(node.value, fn)
        )

    def _is_routed(self, node: ast.AST, fn: FunctionInfo) -> bool:
        parents = self.program.parents_of(fn.module)
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, ast.Call):
                func = current.func
                attr = func.attr if isinstance(func, ast.Attribute) else None
                name = func.id if isinstance(func, ast.Name) else None
                if attr in _THREADSAFE_ROUTES or name in _THREADSAFE_ROUTES:
                    return True
            current = parents.get(current)
        return False

    def _check_touches(
        self, fn: FunctionInfo, provenance: tuple[str, str, int]
    ) -> None:
        module = fn.module
        reason, witness_path, witness_line = provenance
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            owner = self._owner_class(node, fn)
            why = self._loop_owned_reason(owner, node.attr)
            if why is None:
                continue
            if self._is_routed(node, fn):
                continue
            dedupe = ("PF201", module.relpath, node.lineno, node.attr)
            if dedupe in self._reported:
                continue
            self._reported.add(dedupe)
            if module.pragmas.is_disabled(
                "PF201", node.lineno, getattr(node, "end_lineno", None)
            ):
                continue
            assert owner is not None
            self.findings.append(
                FlowFinding(
                    "PF201", module.relpath, node.lineno, node.col_offset,
                    f"loop-owned state {owner.qualname.rsplit('.', 1)[-1]}."
                    f"{node.attr} ({why}) touched from thread context "
                    f"({reason}); route through call_soon_threadsafe or "
                    "run_coroutine_threadsafe",
                    related=(
                        Related(
                            witness_path, witness_line,
                            f"thread context enters here: {reason}",
                        ),
                    ),
                )
            )

    def _check_handoffs(self, fn: FunctionInfo) -> None:
        """PF202: loop-owned values passed into thread entry points."""
        module = fn.module
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            payload: list[ast.expr] = []
            entry = None
            if attr == "run_in_executor" and len(node.args) > 2:
                payload = list(node.args[2:])
                entry = "run_in_executor"
            elif attr == "submit" and len(node.args) > 1:
                receiver = self.program.infer_type(func.value, fn) or ""
                if receiver.split(".")[-1].endswith("Executor"):
                    payload = list(node.args[1:])
                    entry = "submit"
            else:
                dotted = self.program.canonical(
                    self.program._dotted_of(func, module)
                )
                if dotted == "threading.Thread":
                    for kw in node.keywords:
                        if kw.arg == "args" and isinstance(
                            kw.value, (ast.Tuple, ast.List)
                        ):
                            payload = list(kw.value.elts)
                            entry = "Thread(args=...)"
            for arg in payload:
                for sub in ast.walk(arg):
                    if not isinstance(sub, ast.Attribute):
                        continue
                    owner = self._owner_class(sub, fn)
                    why = self._loop_owned_reason(owner, sub.attr)
                    if why is None:
                        continue
                    if module.pragmas.is_disabled(
                        "PF202", sub.lineno, getattr(sub, "end_lineno", None)
                    ):
                        continue
                    dedupe = ("PF202", module.relpath, sub.lineno, sub.attr)
                    if dedupe in self._reported:
                        continue
                    self._reported.add(dedupe)
                    self.findings.append(
                        FlowFinding(
                            "PF202", module.relpath, sub.lineno,
                            sub.col_offset,
                            f"loop-owned object {sub.attr!r} ({why}) passed "
                            f"into a thread entry point ({entry}); threads "
                            "must not receive loop-confined state",
                        )
                    )
