"""Findings, text rendering, SARIF 2.1.0, and the lock-order DOT dump."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Related:
    """A secondary source location attached to a finding."""

    path: str
    line: int
    label: str


@dataclass(frozen=True)
class FlowFinding:
    """One verified-property violation, with its witness locations."""

    code: str
    path: str
    line: int
    col: int
    message: str
    related: tuple[Related, ...] = field(default_factory=tuple)

    def render(self) -> str:
        lines = [f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"]
        for rel in self.related:
            lines.append(f"    {rel.path}:{rel.line}: {rel.label}")
        return "\n".join(lines)


def write_sarif(findings: list[FlowFinding], rules: dict[str, str]) -> str:
    """The findings as a SARIF 2.1.0 document (one run, one driver)."""
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line, finding.col)],
        }
        if finding.related:
            result["relatedLocations"] = [
                {
                    **_location(rel.path, rel.line, 0),
                    "message": {"text": rel.label},
                }
                for rel in finding.related
            ]
        results.append(result)
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "prodb-flow",
                        "informationUri": "docs/dev.md",
                        "rules": [
                            {
                                "id": code,
                                "shortDescription": {"text": text},
                            }
                            for code, text in sorted(rules.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _location(path: str, line: int, col: int) -> dict:
    region: dict = {"startLine": max(1, line)}
    if col:
        region["startColumn"] = col + 1  # SARIF columns are 1-based
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": region,
        }
    }


@dataclass(frozen=True)
class LockEdge:
    """One observed ``held -> acquired`` step on some acquisition path."""

    src: str  # lock key
    dst: str
    path: str
    line: int
    violation: bool = False


def write_lockgraph(
    locks: dict[str, tuple[str, Optional[int]]], edges: list[LockEdge]
) -> str:
    """The lock-order graph as DOT: nodes are locks, edges acquisitions.

    *locks* maps lock key to ``(display name, rank)``. Green-bordered
    nodes are ranked; red edges are rank inversions (the graph of a clean
    tree is a DAG whose edges all point from lower to higher rank).
    """
    lines = [
        "digraph lockorder {",
        '  rankdir="LR";',
        '  node [shape=box, fontname="monospace"];',
    ]
    for key, (name, rank) in sorted(locks.items()):
        label = f"{name}\\nrank {rank}" if rank is not None else f"{name}\\nunranked"
        color = "darkgreen" if rank is not None else "orange"
        lines.append(f'  "{key}" [label="{label}", color={color}];')
    seen: set[tuple[str, str, bool]] = set()
    counts: dict[tuple[str, str, bool], int] = {}
    sites: dict[tuple[str, str, bool], str] = {}
    for edge in edges:
        ident = (edge.src, edge.dst, edge.violation)
        counts[ident] = counts.get(ident, 0) + 1
        sites.setdefault(ident, f"{edge.path}:{edge.line}")
    for ident in counts:
        if ident in seen:
            continue
        seen.add(ident)
        src, dst, violation = ident
        style = ' color=red penwidth=2' if violation else ""
        lines.append(
            f'  "{src}" -> "{dst}" '
            f'[label="{sites[ident]} (&times;{counts[ident]})"{style}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
