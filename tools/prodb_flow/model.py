"""The whole-program model: modules, classes, call graph, locks, types.

Everything the verification passes consume is computed here, once:

* **modules** — every ``*.py`` under the scanned roots, parsed, with its
  import map (``alias -> dotted target``, relative imports resolved) and
  pragmas;
* **classes/functions** — qualified by dotted module name, with base
  classes resolved inside the program, ``@property`` getters marked, and
  per-class attribute types collected from ``self.x = ...`` assignments
  and annotations;
* **locks** — every ``RankedLock(...)`` and raw ``threading`` primitive
  construction site, with the rank argument resolved against the
  ``RANK_* = <int>`` constants found anywhere in the program (so the
  table in ``repro.sanitize`` is discovered, not hard-coded, and fixture
  projects can declare their own ranks). The
  ``lock if lock is not None else RankedLock(...)`` idiom (a lock that
  *may alias* a caller-supplied one, as in ``obs.metrics``) is modelled
  with ``may_alias=True`` — equal-rank re-acquisition through an alias
  is legal because at runtime it is the same reentrant object;
* **call resolution** — a call is resolved only when its receiver's type
  is statically known (``self``, annotated parameters, locals assigned
  from constructor calls or calls with annotated returns, attributes
  recorded on a known class). Unresolvable calls are skipped: the
  analyzer under-approximates the call graph and never guesses by
  method-name matching, so every edge it does traverse is real.

The model is deliberately flow-insensitive about types and flow-
*sensitive* about locksets (the passes re-interpret function bodies);
that split keeps the whole analysis a few hundred milliseconds on this
tree while still proving the properties the issue names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Iterator, Optional

from prodb_lint.engine import discover_files, find_project_root
from prodb_lint.pragmas import Pragmas, parse_pragmas

from .report import FlowFinding

#: threading primitives that count as raw locks for PF102.
RAW_LOCK_NAMES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Dotted types whose instances are owned by the event loop.
LOOP_OWNED_TYPES = {
    "asyncio.Future",
    "asyncio.Task",
    "asyncio.StreamWriter",
    "asyncio.StreamReader",
}


@dataclass
class LockInfo:
    """One lock construction site."""

    key: str  # stable identity, e.g. "repro.engine.cache.LRUCache._lock"
    name: str  # display name (RankedLock's name argument, or the key)
    rank: Optional[int]
    reentrant: bool
    may_alias: bool  # ``lock if lock is not None else RankedLock(...)``
    raw: bool  # bare threading primitive (no rank system)
    pragma_rank: bool  # rank came from a ``# prodb-lint: rank=N`` pragma
    relpath: str
    line: int


@dataclass
class FunctionInfo:
    """One function or method, addressable by dotted qualname."""

    qualname: str  # "module.func" or "module.Class.method"
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional["ClassInfo"]
    is_async: bool
    is_property: bool
    #: function-local lock variables: name -> LockInfo
    local_locks: dict[str, LockInfo] = dc_field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]


@dataclass
class ClassInfo:
    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = dc_field(default_factory=dict)
    bases: list[str] = dc_field(default_factory=list)  # dotted, best effort
    #: attribute -> annotation AST (from AnnAssign, incl. dataclass fields)
    attr_annotations: dict[str, ast.expr] = dc_field(default_factory=dict)
    #: attribute -> (value expr, defining method) from ``self.x = ...``
    attr_exprs: dict[str, tuple[ast.expr, FunctionInfo]] = dc_field(
        default_factory=dict
    )
    attr_locks: dict[str, LockInfo] = dc_field(default_factory=dict)
    #: attributes confined to the event loop (pragma or type taint)
    loop_owned: dict[str, str] = dc_field(default_factory=dict)  # attr -> why


@dataclass
class ModuleInfo:
    name: str  # dotted
    path: Path
    relpath: str
    tree: ast.Module
    source: str
    pragmas: Pragmas
    imports: dict[str, str] = dc_field(default_factory=dict)
    functions: dict[str, FunctionInfo] = dc_field(default_factory=dict)
    classes: dict[str, ClassInfo] = dc_field(default_factory=dict)
    module_locks: dict[str, LockInfo] = dc_field(default_factory=dict)
    constants: dict[str, int] = dc_field(default_factory=dict)  # RANK_*


def _module_name(relpath: str) -> str:
    parts = Path(relpath).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "__root__"


class Program:
    """The analyzed program; shared by all passes."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.ranks: dict[str, int] = {}
        self._parents: dict[str, dict[ast.AST, ast.AST]] = {}
        self._infer_guard: set[tuple[str, str]] = set()

    # -- construction ---------------------------------------------------------

    def add_module(self, path: Path, source: str, tree: ast.Module) -> ModuleInfo:
        try:
            relpath = path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        module = ModuleInfo(
            name=_module_name(relpath),
            path=path,
            relpath=relpath,
            tree=tree,
            source=source,
            pragmas=parse_pragmas(source),
        )
        self.modules[module.name] = module
        self._collect_imports(module)
        self._collect_constants(module)
        self._collect_defs(module)
        return module

    def finalize(self) -> None:
        """Second phase, after every module is registered: locks + attrs."""
        for module in self.modules.values():
            for node in module.tree.body:
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    lock = self._lock_from_value(
                        node.value, module,
                        f"{module.name}.{node.targets[0].id}",
                    )
                    if lock is not None:
                        module.module_locks[node.targets[0].id] = lock
            for fn in module.functions.values():
                self._collect_assignments(fn)
            for cls in module.classes.values():
                self._collect_class_body(cls)
                for fn in cls.methods.values():
                    self._collect_assignments(fn)

    def _collect_imports(self, module: ModuleInfo) -> None:
        # Function-local imports are folded into the module map: names are
        # unique enough in practice and this keeps resolution one lookup.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        module.imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve_import_from(module, node)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    module.imports[alias.asname or alias.name] = (
                        f"{target}.{alias.name}"
                    )

    def _resolve_import_from(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        base = module.name.split(".")
        is_package = module.relpath.endswith("__init__.py")
        drop = node.level if not is_package else node.level - 1
        if drop >= len(base) + 1:
            return node.module
        base = base[: len(base) - drop] if drop else base
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _collect_constants(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
                and not isinstance(node.value.value, bool)
            ):
                name = node.targets[0].id
                module.constants[name] = node.value.value
                if name.startswith("RANK_"):
                    self.ranks.setdefault(name, node.value.value)

    def _collect_defs(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._make_function(module, node, None)
                module.functions[node.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{module.name}.{node.name}",
                    module=module,
                    node=node,
                    bases=[
                        dotted
                        for base in node.bases
                        if (dotted := self._dotted_of(base, module)) is not None
                    ],
                )
                module.classes[node.name] = cls
                self.classes[cls.qualname] = cls
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._make_function(module, item, cls)
                        cls.methods[item.name] = fn
                        self.functions[fn.qualname] = fn

    def _make_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        cls: Optional[ClassInfo],
    ) -> FunctionInfo:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        owner = cls.qualname if cls is not None else module.name
        is_property = any(
            (isinstance(dec, ast.Name) and dec.id in ("property", "cached_property"))
            or (
                isinstance(dec, ast.Attribute)
                and dec.attr in ("getter", "cached_property")
            )
            for dec in node.decorator_list
        )
        return FunctionInfo(
            qualname=f"{owner}.{node.name}",
            module=module,
            node=node,
            cls=cls,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            is_property=is_property,
        )

    def _collect_class_body(self, cls: ClassInfo) -> None:
        module = cls.module
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                cls.attr_annotations[item.target.id] = item.annotation
                lock = self._lock_from_value(
                    item.value, module, f"{cls.qualname}.{item.target.id}"
                )
                if lock is not None:
                    cls.attr_locks[item.target.id] = lock
                if module.pragmas.annotation("loop-owned", item.lineno) is not None:
                    cls.loop_owned[item.target.id] = (
                        f"declared loop-owned at {module.relpath}:{item.lineno}"
                    )

    def _collect_assignments(self, fn: FunctionInfo) -> None:
        module = fn.module
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                annotation: Optional[ast.expr] = node.annotation
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value, annotation = node.targets[0], node.value, None
            else:
                continue
            if (
                fn.cls is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attr = target.attr
                if annotation is not None:
                    fn.cls.attr_annotations.setdefault(attr, annotation)
                if value is not None:
                    fn.cls.attr_exprs.setdefault(attr, (value, fn))
                    lock = self._lock_from_value(
                        value, module, f"{fn.cls.qualname}.{attr}"
                    )
                    if lock is not None:
                        fn.cls.attr_locks[attr] = lock
                if (
                    module.pragmas.annotation("loop-owned", node.lineno)
                    is not None
                ):
                    fn.cls.loop_owned[attr] = (
                        f"declared loop-owned at {module.relpath}:{node.lineno}"
                    )
            elif isinstance(target, ast.Name) and value is not None:
                lock = self._lock_from_value(
                    value, module, f"{fn.qualname}.{target.id}"
                )
                if lock is not None:
                    fn.local_locks[target.id] = lock

    # -- lock construction sites ----------------------------------------------

    def _lock_from_value(
        self, value: Optional[ast.expr], module: ModuleInfo, key: str
    ) -> Optional[LockInfo]:
        if value is None:
            return None
        may_alias = False
        if isinstance(value, ast.IfExp):
            # ``lock if lock is not None else RankedLock(...)``: the lock
            # this attribute really holds may be the caller's instance.
            for branch in (value.body, value.orelse):
                lock = self._lock_from_value(branch, module, key)
                if lock is not None:
                    lock.may_alias = True
                    return lock
            return None
        if not isinstance(value, ast.Call):
            # dataclass fields: field(default_factory=lambda: RankedLock(...))
            return None
        dotted = self._dotted_of(value.func, module)
        if dotted is not None and dotted.split(".")[-1] == "field":
            for kw in value.keywords:
                if kw.arg == "default_factory" and isinstance(kw.value, ast.Lambda):
                    return self._lock_from_value(kw.value.body, module, key)
            return None
        if dotted is not None and dotted.split(".")[-1] == "RankedLock":
            rank = self._resolve_rank(value.args[0] if value.args else None, module)
            name = key
            if len(value.args) > 1 and isinstance(value.args[1], ast.Constant):
                name = str(value.args[1].value)
            reentrant = any(
                kw.arg == "reentrant"
                and isinstance(kw.value, ast.Constant)
                and bool(kw.value.value)
                for kw in value.keywords
            )
            return LockInfo(
                key=key, name=name, rank=rank, reentrant=reentrant,
                may_alias=may_alias, raw=False, pragma_rank=False,
                relpath=module.relpath, line=value.lineno,
            )
        if dotted in {f"threading.{n}" for n in RAW_LOCK_NAMES}:
            pragma = module.pragmas.annotation("rank", value.lineno)
            rank = int(pragma) if pragma is not None else None
            return LockInfo(
                key=key, name=key, rank=rank,
                reentrant=dotted.endswith(("RLock", "Condition")),
                may_alias=may_alias, raw=True, pragma_rank=pragma is not None,
                relpath=module.relpath, line=value.lineno,
            )
        return None

    def _resolve_rank(
        self, arg: Optional[ast.expr], module: ModuleInfo
    ) -> Optional[int]:
        if arg is None:
            return None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
            return arg.value
        dotted = self._dotted_of(arg, module)
        if dotted is None:
            return None
        leaf = dotted.split(".")[-1]
        if leaf in module.constants:
            return module.constants[leaf]
        return self.ranks.get(leaf)

    # -- name / type resolution -----------------------------------------------

    def _dotted_of(self, expr: ast.expr, module: ModuleInfo) -> Optional[str]:
        """Best-effort dotted name of *expr* (``threading.Lock`` etc.)."""
        if isinstance(expr, ast.Name):
            if expr.id in module.classes:
                return f"{module.name}.{expr.id}"
            if expr.id in module.functions:
                return f"{module.name}.{expr.id}"
            return module.imports.get(expr.id, expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._dotted_of(expr.value, module)
            if base is None:
                return None
            return f"{base}.{expr.attr}"
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                parsed = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return None
            return self._dotted_of(parsed, module)
        return None

    def canonical(self, dotted: Optional[str]) -> Optional[str]:
        """Follow re-export chains (``repro.obs.MetricsRegistry`` → the
        defining module's qualname) to a class/function the program knows."""
        seen: set[str] = set()
        while dotted is not None and dotted not in seen:
            seen.add(dotted)
            if dotted in self.classes or dotted in self.functions:
                return dotted
            head, _, tail = dotted.rpartition(".")
            module = self.modules.get(head)
            if module is None:
                return dotted
            if tail in module.classes:
                return module.classes[tail].qualname
            if tail in module.functions:
                return module.functions[tail].qualname
            target = module.imports.get(tail)
            if target is None:
                return dotted
            dotted = target
        return dotted

    def resolve_class(self, dotted: Optional[str]) -> Optional[ClassInfo]:
        return self.classes.get(self.canonical(dotted) or "")

    def resolve_annotation(
        self, annotation: Optional[ast.expr], module: ModuleInfo
    ) -> Optional[str]:
        """The dotted type an annotation denotes (unwrapping Optional/quotes)."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            root = self._dotted_of(annotation.value, module)
            if root is not None and root.split(".")[-1] == "Optional":
                return self.resolve_annotation(annotation.slice, module)
            return None  # containers: not a single instance type
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            left = self.resolve_annotation(annotation.left, module)
            return left or self.resolve_annotation(annotation.right, module)
        return self._dotted_of(annotation, module)

    def annotation_refs(
        self, annotation: Optional[ast.expr], module: ModuleInfo
    ) -> Iterator[str]:
        """Every dotted type an annotation mentions (into containers too)."""
        if annotation is None:
            return
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return
        for node in ast.walk(annotation):
            if isinstance(node, (ast.Name, ast.Attribute)):
                dotted = self._dotted_of(node, module)
                if dotted is not None:
                    yield dotted

    def infer_type(self, expr: ast.expr, fn: FunctionInfo) -> Optional[str]:
        """The dotted class of *expr*'s value, when statically known."""
        module = fn.module
        if isinstance(expr, ast.IfExp):
            return self.infer_type(expr.body, fn) or self.infer_type(
                expr.orelse, fn
            )
        if isinstance(expr, ast.Call):
            dotted = self._dotted_of(expr.func, module)
            if self.resolve_class(dotted) is not None:
                return dotted  # constructor call
            callee = self.resolve_call(expr, fn)
            if callee is not None:
                returns = getattr(callee.node, "returns", None)
                return self.resolve_annotation(returns, callee.module)
            return None
        if isinstance(expr, ast.Name):
            return self._infer_name(expr.id, fn)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                if fn.cls is not None:
                    return self._attr_type(fn.cls, expr.attr)
                return None
            base = self.infer_type(expr.value, fn)
            cls = self.resolve_class(base)
            if cls is not None:
                return self._attr_type(cls, expr.attr)
            return None
        return None

    def _infer_name(self, name: str, fn: FunctionInfo) -> Optional[str]:
        guard = (fn.qualname, name)
        if guard in self._infer_guard:
            return None
        self._infer_guard.add(guard)
        try:
            node = fn.node
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if name == "self" and fn.cls is not None:
                return fn.cls.qualname
            args = node.args
            for param in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if param.arg == name:
                    return self.resolve_annotation(param.annotation, fn.module)
            for stmt in ast.walk(node):
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == name
                ):
                    return self.infer_type(stmt.value, fn)
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == name
                ):
                    return self.resolve_annotation(stmt.annotation, fn.module)
            return None
        finally:
            self._infer_guard.discard(guard)

    def _attr_type(self, cls: ClassInfo, attr: str) -> Optional[str]:
        for klass in self.mro(cls):
            if attr in klass.attr_annotations:
                resolved = self.resolve_annotation(
                    klass.attr_annotations[attr], klass.module
                )
                if resolved is not None:
                    return resolved
            if attr in klass.attr_exprs:
                value, method = klass.attr_exprs[attr]
                inferred = self.infer_type(value, method)
                if inferred is not None:
                    return inferred
            prop = klass.methods.get(attr)
            if prop is not None and prop.is_property:
                returns = getattr(prop.node, "returns", None)
                return self.resolve_annotation(returns, klass.module)
        return None

    def mro(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """The class and its in-program bases, depth-first, cycle-safe."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            yield current
            for base in current.bases:
                resolved = self.resolve_class(base)
                if resolved is not None:
                    stack.append(resolved)

    # -- call resolution --------------------------------------------------------

    def resolve_call(
        self, call: ast.Call, fn: FunctionInfo
    ) -> Optional[FunctionInfo]:
        return self.resolve_callable(call.func, fn)

    def resolve_callable(
        self, func: ast.expr, fn: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """Resolve a callable expression to an in-program function."""
        module = fn.module
        if isinstance(func, ast.Name):
            if func.id in module.functions:
                return module.functions[func.id]
            dotted = self.canonical(module.imports.get(func.id))
            if dotted is not None:
                found = self.functions.get(dotted)
                if found is not None:
                    return found
                cls = self.resolve_class(dotted)
                if cls is not None:
                    return self.lookup_method(cls, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                if fn.cls is not None:
                    return self.lookup_method(fn.cls, func.attr)
                return None
            dotted = self.canonical(self._dotted_of(func, module))
            if dotted is not None and dotted in self.functions:
                return self.functions[dotted]
            base = self.infer_type(func.value, fn)
            cls = self.resolve_class(base)
            if cls is not None:
                return self.lookup_method(cls, func.attr)
            return None
        return None

    def lookup_method(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        for klass in self.mro(cls):
            if name in klass.methods:
                return klass.methods[name]
        return None

    def lookup_attr_lock(
        self, cls: ClassInfo, attr: str
    ) -> Optional[LockInfo]:
        for klass in self.mro(cls):
            if attr in klass.attr_locks:
                return klass.attr_locks[attr]
        return None

    # -- helpers shared by the passes ------------------------------------------

    def parents_of(self, module: ModuleInfo) -> dict[ast.AST, ast.AST]:
        cached = self._parents.get(module.name)
        if cached is None:
            cached = {
                child: node
                for node in ast.walk(module.tree)
                for child in ast.iter_child_nodes(node)
            }
            self._parents[module.name] = cached
        return cached

    def all_functions(self) -> Iterator[FunctionInfo]:
        return iter(list(self.functions.values()))

    def suppressed(self, module: ModuleInfo, code: str, node: ast.AST) -> bool:
        first = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", None) or first
        return module.pragmas.is_disabled(code, first, last)

    def pragma_findings(self) -> list[FlowFinding]:
        """PF000: every PF suppression must carry a ``--`` justification."""
        findings: list[FlowFinding] = []
        for module in self.modules.values():
            for line, codes in sorted(module.pragmas.line_disables.items()):
                pf = sorted(c for c in codes if c.startswith("PF"))
                if pf and module.pragmas.justification(line) is None:
                    findings.append(
                        FlowFinding(
                            "PF000", module.relpath, line, 0,
                            f"suppression of {', '.join(pf)} has no '--' "
                            "justification; explain why the finding is safe",
                        )
                    )
        return findings


def build_program(paths: list[str], root: Optional[str] = None) -> Program:
    """Discover, parse and model every ``*.py`` under *paths*."""
    files = discover_files(paths)
    project_root = (
        Path(root).resolve()
        if root is not None
        else (find_project_root(files[0]) if files else Path.cwd())
    )
    program = Program(project_root)
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue  # prodb_lint reports PL000 for these
        program.add_module(path, source, tree)
    program.finalize()
    return program
