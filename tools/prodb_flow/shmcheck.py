"""Shared-memory write-path and worker pickle-boundary verification.

**PF301 — shm read-only discipline.** ``relational.shm.attach`` maps a
publisher's segments as read-only numpy views; a mutation through them
would corrupt every sibling worker (the ``writeable=False`` flag catches
stores at runtime — this pass proves their absence statically, including
on paths tests never execute). Taint starts at any call whose resolved
return type (or constructed class) is ``AttachedShards`` and propagates
through attribute loads, subscripts and aliasing assignments — but *not*
through call results, so ``shards.to_tid()`` (which decodes into a fresh
row-level database) starts clean. A tainted value passed as an argument
re-runs the check inside the callee with that parameter tainted
(``seed_scan_cache(db, shards.columnar)`` is verified on the far side).
Flagged mutations: subscript/augmented stores, mutating ndarray methods
(``fill``/``sort``/``resize``/…), ``np.copyto``/``np.put``/``np.place``
with a tainted destination, and ``Relation.add``/``replace``/
``set_fact`` on tainted receivers.

**PF302 — the pickle boundary.** Everything crossing to a worker process
(multiprocessing queue ``put``, ``Process(target=..., args=...)``) must
come from the picklable allowlist: literals, dataclass records, plain
calls. Flagged: lambdas, functions nested in the sending function,
``self``, and values whose inferred type is a known-unpicklable runtime
object (sessions, ladders, executors, locks, registries, stream
writers). ``Process`` targets must be module-level functions — a bound
method would drag its whole ``self`` across the boundary.
"""

from __future__ import annotations

import ast
from typing import Optional

from .model import FunctionInfo, Program
from .report import FlowFinding

#: ndarray / Relation methods that mutate their receiver in place.
MUTATING_METHODS = {
    "fill", "sort", "resize", "put", "partition", "setfield", "itemset",
    "byteswap", "add", "replace", "set_fact", "clear", "update",
    "setdefault", "pop", "append", "extend",
}

#: numpy module-level functions whose first argument is mutated.
MUTATING_NUMPY = {"copyto", "put", "place", "putmask", "fill_diagonal"}

#: Types that must never cross the worker pickle boundary.
UNPICKLABLE_LEAVES = {
    "EngineSession", "MethodLadder", "QueryServer", "ServerThread",
    "WorkerPool", "ThreadPoolExecutor", "ProcessPoolExecutor",
    "RankedLock", "MetricsRegistry", "LRUCache", "StreamWriter",
    "StreamReader", "Thread", "AbstractEventLoop", "Future", "Task",
    "Lock", "RLock", "Condition",
}

_MAX_DEPTH = 3


class BoundaryPass:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.findings: list[FlowFinding] = []
        self._reported: set[tuple] = set()
        self._visited: set[tuple[str, frozenset]] = set()

    def run(self) -> list[FlowFinding]:
        for fn in self.program.all_functions():
            self._check_function(fn, tainted=frozenset(), depth=0)
            self._check_pickle_sites(fn)
        return self.findings

    def _emit(self, code: str, fn: FunctionInfo, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        dedupe = (code, fn.module.relpath, line, message)
        if dedupe in self._reported:
            return
        self._reported.add(dedupe)
        if fn.module.pragmas.is_disabled(
            code, line, getattr(node, "end_lineno", None)
        ):
            return
        self.findings.append(
            FlowFinding(code, fn.module.relpath, line, col, message)
        )

    # -- PF301: attached-shard mutation -----------------------------------------

    def _returns_attached(self, call: ast.Call, fn: FunctionInfo) -> bool:
        dotted = self.program.canonical(
            self.program._dotted_of(call.func, fn.module)
        )
        if dotted is not None and dotted.split(".")[-1] == "AttachedShards":
            return True
        callee = self.program.resolve_call(call, fn)
        if callee is None:
            return False
        returns = self.program.resolve_annotation(
            getattr(callee.node, "returns", None), callee.module
        )
        return (
            returns is not None
            and returns.split(".")[-1] == "AttachedShards"
        )

    def _expr_tainted(
        self, expr: ast.expr, tainted: frozenset, fn: FunctionInfo
    ) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self._expr_tainted(expr.value, tainted, fn)
        if isinstance(expr, ast.IfExp):
            return self._expr_tainted(
                expr.body, tainted, fn
            ) or self._expr_tainted(expr.orelse, tainted, fn)
        if isinstance(expr, ast.Call):
            # Call results are untainted (to_tid() decodes a fresh copy) —
            # except calls that *produce* the attached shards themselves.
            return self._returns_attached(expr, fn)
        return False

    def _check_function(
        self, fn: FunctionInfo, tainted: frozenset, depth: int
    ) -> None:
        key = (fn.qualname, tainted)
        if key in self._visited or depth > _MAX_DEPTH:
            return
        self._visited.add(key)
        node = fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        live = set(tainted)
        # Two passes: taint is flow-insensitive within the function, which
        # over-approximates aliases introduced before their source binds.
        for _ in range(2):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    value = stmt.value
                    seeds = isinstance(value, ast.Call) and self._returns_attached(
                        value, fn
                    )
                    if isinstance(target, ast.Name) and (
                        seeds or self._expr_tainted(value, frozenset(live), fn)
                    ):
                        live.add(target.id)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if self._expr_tainted(stmt.iter, frozenset(live), fn):
                        for name_node in ast.walk(stmt.target):
                            if isinstance(name_node, ast.Name):
                                live.add(name_node.id)
        taint = frozenset(live)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(
                        target, (ast.Subscript, ast.Attribute)
                    ) and self._expr_tainted(target.value, taint, fn):
                        self._emit(
                            "PF301", fn, target,
                            "store into data reachable from attached shm "
                            "shards; attached views are read-only for every "
                            "worker",
                        )
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(
                    stmt.target, (ast.Subscript, ast.Attribute, ast.Name)
                ) and self._expr_tainted(stmt.target, taint, fn):
                    self._emit(
                        "PF301", fn, stmt.target,
                        "augmented assignment mutates data reachable from "
                        "attached shm shards",
                    )
            elif isinstance(stmt, ast.Call):
                self._check_mutating_call(stmt, fn, taint)
                self._propagate_into_callee(stmt, fn, taint, depth)

    def _check_mutating_call(
        self, call: ast.Call, fn: FunctionInfo, taint: frozenset
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATING_METHODS and self._expr_tainted(
                func.value, taint, fn
            ):
                self._emit(
                    "PF301", fn, call,
                    f"mutating call .{func.attr}() on data reachable from "
                    "attached shm shards",
                )
                return
            dotted = self.program._dotted_of(func, fn.module) or ""
            leaf = dotted.split(".")[-1]
            root = dotted.split(".")[0]
            if (
                leaf in MUTATING_NUMPY
                and root in ("numpy", "np")
                and call.args
                and self._expr_tainted(call.args[0], taint, fn)
            ):
                self._emit(
                    "PF301", fn, call,
                    f"numpy.{leaf}() writes into data reachable from "
                    "attached shm shards",
                )

    def _propagate_into_callee(
        self, call: ast.Call, fn: FunctionInfo, taint: frozenset, depth: int
    ) -> None:
        tainted_positions = [
            index
            for index, arg in enumerate(call.args)
            if self._expr_tainted(arg, taint, fn)
        ]
        if not tainted_positions:
            return
        callee = self.program.resolve_call(call, fn)
        if callee is None:
            return
        callee_node = callee.node
        assert isinstance(callee_node, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = [arg.arg for arg in callee_node.args.args]
        if callee.cls is not None and params and params[0] == "self":
            params = params[1:]
        callee_taint = frozenset(
            params[index] for index in tainted_positions if index < len(params)
        )
        if callee_taint:
            self._check_function(callee, callee_taint, depth + 1)

    # -- PF302: the pickle boundary ---------------------------------------------

    def _check_pickle_sites(self, fn: FunctionInfo) -> None:
        module = fn.module
        nested = {
            sub.name
            for sub in ast.walk(fn.node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not fn.node
        }
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "put"
                and "queue" in _receiver_text(func.value).lower()
            ):
                for arg in node.args[:1]:
                    self._check_payload(arg, fn, nested, site="queue put")
            elif (
                isinstance(func, ast.Attribute) and func.attr == "Process"
            ) or (
                self.program.canonical(
                    self.program._dotted_of(func, module)
                )
                == "multiprocessing.Process"
            ):
                self._check_process(node, fn, nested)

    def _check_process(
        self, call: ast.Call, fn: FunctionInfo, nested: set[str]
    ) -> None:
        for kw in call.keywords:
            if kw.arg == "target":
                target = self.program.resolve_callable(kw.value, fn)
                if isinstance(kw.value, ast.Lambda):
                    self._emit(
                        "PF302", fn, kw.value,
                        "Process target is a lambda; workers need a "
                        "module-level function",
                    )
                elif target is not None and target.cls is not None:
                    self._emit(
                        "PF302", fn, kw.value,
                        f"Process target {target.qualname} is a bound "
                        "method; pickling it drags the whole instance "
                        "across the worker boundary",
                    )
                elif (
                    isinstance(kw.value, ast.Name) and kw.value.id in nested
                ):
                    self._emit(
                        "PF302", fn, kw.value,
                        "Process target is a nested function; spawn "
                        "requires a module-level target",
                    )
            elif kw.arg == "args" and isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                for element in kw.value.elts:
                    self._check_payload(
                        element, fn, nested, site="Process args"
                    )

    def _check_payload(
        self,
        expr: ast.expr,
        fn: FunctionInfo,
        nested: set[str],
        site: str,
        hop: int = 0,
    ) -> None:
        if isinstance(expr, ast.Dict):
            for part in (*expr.keys, *expr.values):
                if part is not None:
                    self._check_payload(part, fn, nested, site, hop)
            return
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self._check_payload(element, fn, nested, site, hop)
            return
        if isinstance(expr, ast.IfExp):
            self._check_payload(expr.body, fn, nested, site, hop)
            self._check_payload(expr.orelse, fn, nested, site, hop)
            return
        if isinstance(expr, ast.Constant):
            return
        if isinstance(expr, ast.Lambda):
            self._emit(
                "PF302", fn, expr,
                f"lambda crosses the worker pickle boundary ({site})",
            )
            return
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                self._emit(
                    "PF302", fn, expr,
                    f"'self' crosses the worker pickle boundary ({site})",
                )
                return
            if expr.id in nested:
                self._emit(
                    "PF302", fn, expr,
                    f"nested function {expr.id!r} crosses the worker "
                    f"pickle boundary ({site})",
                )
                return
            if hop == 0:
                source = self._sole_assignment(expr.id, fn)
                if source is not None:
                    self._check_payload(source, fn, nested, site, hop=1)
                    return
        inferred = self.program.infer_type(expr, fn)
        leaf = (inferred or "").split(".")[-1]
        if leaf in UNPICKLABLE_LEAVES:
            self._emit(
                "PF302", fn, expr,
                f"value of type {leaf} crosses the worker pickle boundary "
                f"({site}); only plain data may cross — see the allowlist "
                "in tools/prodb_flow/shmcheck.py",
            )

    def _sole_assignment(
        self, name: str, fn: FunctionInfo
    ) -> Optional[ast.expr]:
        found: Optional[ast.expr] = None
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
            ):
                if found is not None:
                    return None  # re-bound; give up
                found = node.value
        return found


def _receiver_text(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f"{_receiver_text(expr.value)}.{expr.attr}"
    return ""
