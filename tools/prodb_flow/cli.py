"""Command line front end: ``PYTHONPATH=tools python -m prodb_flow src``."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import RULES
from .locks import LocksetPass
from .loops import ConfinementPass
from .model import build_program
from .report import FlowFinding, write_lockgraph, write_sarif
from .shmcheck import BoundaryPass


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="prodb-flow",
        description=(
            "whole-program concurrency analyzer: lockset rank-monotonicity, "
            "event-loop confinement, shm/pickle boundary checks"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze as one program (default: src)",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODES",
        help="comma-separated rule codes to report (default: all)",
    )
    parser.add_argument(
        "--root", default=None,
        help="project root (default: walk up to pyproject.toml)",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="also write findings as SARIF 2.1.0 to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--emit-lockgraph", default=None, metavar="FILE",
        help="write the observed lock-order graph as DOT to FILE",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, text in sorted(RULES.items()):
            print(f"{code}  {text}")
        return 0

    selected = None
    if args.select:
        selected = {
            code.strip()
            for spec in args.select
            for code in spec.split(",")
            if code.strip()
        }
        unknown = selected - set(RULES)
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(sorted(unknown))}")

    program = build_program(args.paths, root=args.root)

    findings: list[FlowFinding] = []
    lockset = LocksetPass(program)
    findings.extend(lockset.run())
    findings.extend(ConfinementPass(program).run())
    findings.extend(BoundaryPass(program).run())
    findings.extend(program.pragma_findings())
    deduped = {(f.code, f.path, f.line, f.col, f.message): f for f in findings}
    findings = sorted(
        deduped.values(), key=lambda f: (f.path, f.line, f.col, f.code)
    )
    if selected is not None:
        findings = [f for f in findings if f.code in selected]

    if args.emit_lockgraph:
        dot = write_lockgraph(lockset.lock_nodes, lockset.edges)
        with open(args.emit_lockgraph, "w", encoding="utf-8") as handle:
            handle.write(dot)

    if args.sarif:
        sarif = write_sarif(findings, RULES)
        if args.sarif == "-":
            sys.stdout.write(sarif)
        else:
            with open(args.sarif, "w", encoding="utf-8") as handle:
                handle.write(sarif)

    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"prodb-flow: {len(findings)} finding(s) in "
            f"{len(program.modules)} module(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
