"""CI smoke test for the serving layer.

Starts a real server on a background thread, round-trips queries over
both the NDJSON protocol and the HTTP shim — including one answer forced
down a degraded ladder rung — scrapes ``/metrics``, then shuts down
gracefully. Exits nonzero on any deviation.

Run as::

    PYTHONPATH=src python tools/server_smoke.py

Pass ``--workers N`` to smoke the multi-process mode instead: N worker
processes attached to shared-memory shards, with per-worker liveness on
``/healthz`` and ``server_worker_*`` gauges on ``/metrics``.
"""

from __future__ import annotations

import argparse
import sys


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="smoke the multi-process mode with N worker processes",
    )
    args = parser.parse_args()
    pooled = args.workers > 0

    from repro.engine.session import EngineSession
    from repro.server import ServerClient, ServerConfig, ServerThread, http_get
    from repro.workloads.generators import figure1_database

    session = EngineSession(figure1_database(), seed=7)
    # Use the process-default registry so the scrape also shows the engine
    # counters SessionStats publishes (the smoke runs in its own process).
    config = ServerConfig(
        workers=args.workers if pooled else 2,
        mode="processes" if pooled else "threads",
        default_epsilon=0.3,
        default_delta=0.1,
    )

    with ServerThread(session, config) as server:
        host, port = server.host, server.port
        print(f"server up on {host}:{port} (mode={config.mode})")

        with ServerClient(host, port) as client:
            # 1. Exact answer via the ladder.
            exact = client.query("R(x), S(x,y)", id="smoke-1")
            if not exact.get("ok"):
                fail(f"exact query failed: {exact}")
            if exact.get("rung") != "exact" or not exact.get("exact"):
                fail(f"expected the exact rung: {exact}")
            if "guarantee" not in exact or exact.get("id") != "smoke-1":
                fail(f"missing guarantee or id echo: {exact}")
            print(f"  exact rung: P={exact['probability']:.6f} [{exact['method']}]")

            # 2. A degraded answer: a deadline no exact route can meet.
            degraded = client.query(
                "R(x), S(x,y)", deadline_ms=0.0001, epsilon=0.3, delta=0.1
            )
            if not degraded.get("ok"):
                fail(f"degraded query failed: {degraded}")
            if degraded.get("rung") not in ("bounds", "sampled"):
                fail(f"expected a degraded rung: {degraded}")
            if not degraded.get("guarantee"):
                fail(f"degraded answer must state its guarantee: {degraded}")
            error = abs(degraded["probability"] - exact["probability"])
            print(
                f"  degraded rung: {degraded['rung']} "
                f"P={degraded['probability']:.6f} (|Δ|={error:.4f}) — "
                f"{degraded['guarantee']}"
            )

            # 3. Protocol validation stays a response, not a dropped socket.
            bad = client.request({"query": "R(x,"})
            if bad.get("ok") or bad.get("error") != "bad_request":
                fail(f"malformed query must yield bad_request: {bad}")
            print(f"  bad request rejected: {bad['message']}")

            # 4. Conditioning: install Γ, query through it, what-if, drop.
            installed = client.condition(['+R("a1")', "R(x), S(x,y)"])
            if not installed.get("ok"):
                fail(f"condition install failed: {installed}")
            sid = installed["scenario"]
            again = client.condition('R(x), S(x,y) ; +R("a1")')
            if again.get("scenario") != sid:
                fail(f"condition install must be idempotent: {again}")
            conditioned = client.query('R("a2")', scenario=sid)
            if not conditioned.get("ok") or conditioned.get("scenario") != sid:
                fail(f"conditioned query failed: {conditioned}")
            print(
                f"  conditioned: P(R(a2)|Γ)={conditioned['probability']:.6f} "
                f"P(Γ)={conditioned.get('gamma_probability', 0):.6f} "
                f"[{conditioned['method']}]"
            )
            whatif = client.query(
                'R("a2")', scenario=sid, force={'S("a1","b1")': True}
            )
            if not whatif.get("ok"):
                fail(f"what-if query failed: {whatif}")
            print(f"  what-if (cofactor): P={whatif['probability']:.6f}")
            missing = client.query('R("a2")', scenario="s" + "f" * 16)
            if missing.get("ok") or missing.get("error") != "unknown_scenario":
                fail(f"unknown scenario must yield unknown_scenario: {missing}")
            dropped = client.drop_condition(sid)
            if not dropped.get("ok") or dropped.get("dropped") is not True:
                fail(f"drop_condition failed: {dropped}")
            redropped = client.drop_condition(sid)
            if redropped.get("dropped") is not False:
                fail(f"drop must be idempotent: {redropped}")
            print(f"  scenario {sid} installed, queried, derived, dropped")

        # 5. HTTP shim: health, one POSTed query, and the metrics scrape.
        health = http_get(host, port, "/healthz")
        if '"status": "ok"' not in health:
            fail(f"unexpected /healthz body: {health!r}")
        metrics = http_get(host, port, "/metrics")
        needed_metrics = [
            "server_requests_total",
            "server_answers_total",
            "server_request_seconds",
            "scenario_installs_total",
            "scenarios_installed",
            "scenario_circuits_cached",
            "engine_cache_entries",
        ]
        if pooled:
            # In pool mode engine counters live in the workers and come back
            # as merged server_workers_* gauges plus per-worker liveness.
            needed_metrics += [
                "server_workers_engine_queries_total",
                "server_worker_0_alive",
                f"server_worker_{args.workers - 1}_alive",
                "server_worker_0_queue_depth",
            ]
        else:
            needed_metrics.append("engine_queries_total")
        for needed in needed_metrics:
            if needed not in metrics:
                fail(f"/metrics missing {needed}:\n{metrics}")
        print(f"  /metrics exposes {len(metrics.splitlines())} lines")

        if pooled:
            import json

            workers = json.loads(health).get("workers", [])
            if len(workers) != args.workers:
                fail(f"expected {args.workers} workers on /healthz: {health!r}")
            for worker in workers:
                if not worker.get("alive") or worker.get("pid", 0) <= 0:
                    fail(f"worker not healthy: {worker}")
            print(f"  {len(workers)} workers alive: {[w['pid'] for w in workers]}")

    print("server smoke OK (graceful shutdown)")


if __name__ == "__main__":
    main()
