"""prodb-lint: repo-specific static analysis for the prodb engine.

The engine's correctness rests on invariants nothing in the type system
enforces: every Boolean expression must be interned through the kernel's
unique table, shared memos in ``repro.engine`` must be lock-guarded (or
deliberately lock-free and documented as such), probability arithmetic must
not compare floats for exact equality, and the approximate routes must be
reproducible. ``prodb_lint`` machine-checks those conventions with five
stdlib-``ast`` rules:

========  ==================================================================
PL001     no direct construction of ``BExpr`` node classes outside
          ``src/repro/booleans/`` — use the ``bvar``/``band``/``bor``/
          ``bnot`` factories (or ``BAnd.of``/``BOr.of``), which intern and
          canonicalize
PL002     module-level or instance mutable containers in
          ``src/repro/engine/`` and ``src/repro/booleans/`` mutated outside
          a ``with <lock>`` block and not ``threading.local``
PL003     ``==`` / ``!=`` against float literals — use ``math.isclose`` or
          annotate ``# prodb-lint: exact`` when exact semantics are intended
PL004     unseeded ``random`` / ``numpy.random`` use in ``benchmarks/`` and
          the sampling call sites of ``repro.wmc``
PL005     modules documented in ``docs/api.md`` must define ``__all__``
          covering every documented name
========  ==================================================================

Run as ``python -m prodb_lint src/ benchmarks/ tests/`` (with ``tools/`` on
``PYTHONPATH``). Findings can be suppressed per line with
``# prodb-lint: disable=PL001,PL003`` or the rule-specific aliases
(``exact``, ``lockfree``, ``allow-construct``, ``seeded``), and per file
with ``# prodb-lint: disable-file=PL004``. See ``docs/dev.md``.
"""

from __future__ import annotations

from .engine import Finding, LintContext, lint_file, lint_paths
from .rules import ALL_RULES

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "lint_file",
    "lint_paths",
    "__version__",
]
