"""Pragma parsing: ``# prodb-lint: ...`` comments.

One pragma grammar serves both tools — :mod:`prodb_lint` (syntactic
rules, ``PL``-prefixed) and :mod:`prodb_flow` (whole-program concurrency
analysis, ``PF``-prefixed). Three directive families:

* **suppressions** — ``# prodb-lint: disable=PL001,PF103`` suppresses the
  listed rules on the physical line carrying the comment (for multi-line
  statements, any line the offending node spans works);
  ``disable-file=...`` (anywhere in the file) suppresses for the whole
  file. Rule-specific aliases read better at the call site:

  ==================  ======
  ``exact``           PL003
  ``lockfree``        PL002
  ``allow-construct`` PL001
  ``seeded``          PL004
  ==================  ======

* **annotations** — machine-readable facts consumed by ``prodb_flow``:

  - ``# prodb-lint: rank=<N>`` on a lock-construction line declares that
    a raw ``threading.Lock``/``RLock`` deliberately participates in the
    engine's rank order at rank ``N`` (see ``repro.sanitize``). The
    lockset pass then checks it like a :class:`RankedLock` instead of
    flagging it PF102.
  - ``# prodb-lint: loop-owned`` on an attribute declaration marks the
    container as confined to the asyncio event-loop thread; the
    confinement pass (PF2xx) seeds its taint set from these.

* **justifications** — any directive may carry free text after ``--``::

      winner = table.setdefault(key, node)  # prodb-lint: lockfree -- GIL-atomic

  ``prodb_flow`` *requires* a justification on every ``PF`` suppression
  (an unexplained suppression is itself a finding, PF000).

Unknown directives are reported as ``PL000`` findings rather than
silently ignored — with the offending token named, so a typo like
``# prodb-lint: rnak=30`` tells you which key it did not recognise
instead of only where it sits.

``exact`` marks intentional bit-exact IEEE equality only. Code computing
in log space — notably the columnar backend's ⊕-aggregation in
``src/repro/relational/columnar.py``, where ``log1p``/``expm1`` round-trips
leave results a few ulps off the ideal 0.0/1.0 — compares through
``math.isclose`` or explicit tolerances instead of pragma-blessed float
literals.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass, field
from typing import Optional

#: Aliases accepted in place of explicit ``disable=`` lists.
ALIASES: dict[str, str] = {
    "exact": "PL003",
    "lockfree": "PL002",
    "allow-construct": "PL001",
    "seeded": "PL004",
}

#: Annotation keys understood by the toolchain (consumed by prodb_flow).
ANNOTATION_KEYS = ("rank", "loop-owned")

#: Rule-code prefixes the ``disable=`` lists accept.
_CODE_PREFIXES = ("PL", "PF")

_PREFIX = "prodb-lint:"


@dataclass
class Pragmas:
    """Suppression and annotation state for one file."""

    line_disables: dict[int, set[str]] = field(default_factory=dict)
    file_disables: set[str] = field(default_factory=set)
    #: ``{line: {key: value}}`` — machine-readable annotations
    #: (``rank`` maps to its integer literal as text, ``loop-owned``
    #: to the empty string).
    annotations: dict[int, dict[str, str]] = field(default_factory=dict)
    #: ``{line: text}`` — the free text after ``--`` of each directive.
    justifications: dict[int, str] = field(default_factory=dict)
    #: ``(line, directive, detail)`` of directives that could not be
    #: parsed; *detail* names the offending token.
    malformed: list[tuple[int, str, str]] = field(default_factory=list)

    def is_disabled(self, code: str, first_line: int, last_line: int | None = None) -> bool:
        """Whether *code* is suppressed anywhere on the node's line span."""
        if code in self.file_disables:
            return True
        last = first_line if last_line is None else last_line
        for line in range(first_line, last + 1):
            if code in self.line_disables.get(line, ()):
                return True
        return False

    def annotation(self, key: str, first_line: int, last_line: int | None = None) -> Optional[str]:
        """The value of annotation *key* on the node's line span, or None."""
        last = first_line if last_line is None else last_line
        for line in range(first_line, last + 1):
            found = self.annotations.get(line)
            if found is not None and key in found:
                return found[key]
        return None

    def justification(self, line: int) -> Optional[str]:
        """The ``--`` justification of the directive on *line*, if any."""
        return self.justifications.get(line)

    def _add(self, scope: dict[int, set[str]] | set[str], line: int, codes: set[str]) -> None:
        if isinstance(scope, set):
            scope.update(codes)
        else:
            scope.setdefault(line, set()).update(codes)


def _parse_codes(spec: str) -> tuple[Optional[set[str]], str]:
    """Parse a rule-code list; returns ``(codes, bad_token)``."""
    parts = [part.strip() for part in spec.split(",")]
    codes = {part.upper() for part in parts if part}
    if not codes:
        return None, spec.strip() or "<empty>"
    for code in sorted(codes):
        if not (code[:2] in _CODE_PREFIXES and code[2:].isdigit()):
            return None, code
    return codes, ""


def parse_pragmas(source: str) -> Pragmas:
    """Extract all ``# prodb-lint:`` directives from *source*."""
    pragmas = Pragmas()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for line, comment in comments:
        text = comment.lstrip("#").strip()
        if not text.startswith(_PREFIX):
            continue
        directive, _, justification = text[len(_PREFIX):].partition("--")
        directive = directive.strip()
        justification = justification.strip()
        if justification:
            pragmas.justifications[line] = justification
        lowered = directive.lower()
        if lowered in ALIASES:
            pragmas._add(pragmas.line_disables, line, {ALIASES[lowered]})
        elif lowered == "loop-owned":
            pragmas.annotations.setdefault(line, {})["loop-owned"] = "true"
        elif lowered.startswith("rank="):
            value = directive.split("=", 1)[1].strip()
            try:
                int(value)
            except ValueError:
                pragmas.malformed.append(
                    (line, directive, f"rank must be an integer, got {value!r}")
                )
            else:
                pragmas.annotations.setdefault(line, {})["rank"] = value
        elif lowered.startswith("disable-file="):
            codes, bad = _parse_codes(directive.split("=", 1)[1])
            if codes is None:
                pragmas.malformed.append(
                    (line, directive, f"bad rule code {bad!r} in disable-file list")
                )
            else:
                pragmas._add(pragmas.file_disables, line, codes)
        elif lowered.startswith("disable="):
            codes, bad = _parse_codes(directive.split("=", 1)[1])
            if codes is None:
                pragmas.malformed.append(
                    (line, directive, f"bad rule code {bad!r} in disable list")
                )
            else:
                pragmas._add(pragmas.line_disables, line, codes)
        else:
            token = directive.split("=", 1)[0].split()[0] if directive else "<empty>"
            known = ", ".join(
                ("disable", "disable-file", *ANNOTATION_KEYS, *sorted(ALIASES))
            )
            pragmas.malformed.append(
                (line, directive, f"unknown annotation key {token!r} (known: {known})")
            )
    return pragmas
