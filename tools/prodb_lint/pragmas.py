"""Pragma parsing: ``# prodb-lint: ...`` comments.

Two scopes:

* **line** — ``# prodb-lint: disable=PL001,PL003`` suppresses the listed
  rules on the physical line carrying the comment (for multi-line
  statements, any line the offending node spans works). Rule-specific
  aliases read better at the call site:

  ==================  ======
  ``exact``           PL003
  ``lockfree``        PL002
  ``allow-construct`` PL001
  ``seeded``          PL004
  ==================  ======

* **file** — ``# prodb-lint: disable-file=PL004`` (anywhere in the file)
  suppresses the listed rules for the whole file.

Any directive may carry a justification after ``--``::

    winner = table.setdefault(key, node)  # prodb-lint: lockfree -- GIL-atomic

Unknown directives are reported as ``PL000`` findings rather than silently
ignored, so a typo like ``# prodb-lint: exact`` cannot mask a violation.

``exact`` marks intentional bit-exact IEEE equality only. Code computing
in log space — notably the columnar backend's ⊕-aggregation in
``src/repro/relational/columnar.py``, where ``log1p``/``expm1`` round-trips
leave results a few ulps off the ideal 0.0/1.0 — compares through
``math.isclose`` or explicit tolerances instead of pragma-blessed float
literals.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass, field

#: Aliases accepted in place of explicit ``disable=`` lists.
ALIASES: dict[str, str] = {
    "exact": "PL003",
    "lockfree": "PL002",
    "allow-construct": "PL001",
    "seeded": "PL004",
}

_PREFIX = "prodb-lint:"


@dataclass
class Pragmas:
    """Suppression state for one file."""

    line_disables: dict[int, set[str]] = field(default_factory=dict)
    file_disables: set[str] = field(default_factory=set)
    #: ``(line, text)`` of directives that could not be parsed.
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def is_disabled(self, code: str, first_line: int, last_line: int | None = None) -> bool:
        """Whether *code* is suppressed anywhere on the node's line span."""
        if code in self.file_disables:
            return True
        last = first_line if last_line is None else last_line
        for line in range(first_line, last + 1):
            if code in self.line_disables.get(line, ()):
                return True
        return False

    def _add(self, scope: dict[int, set[str]] | set[str], line: int, codes: set[str]) -> None:
        if isinstance(scope, set):
            scope.update(codes)
        else:
            scope.setdefault(line, set()).update(codes)


def _parse_codes(spec: str) -> set[str] | None:
    codes = {part.strip().upper() for part in spec.split(",") if part.strip()}
    if not codes or not all(c.startswith("PL") and c[2:].isdigit() for c in codes):
        return None
    return codes


def parse_pragmas(source: str) -> Pragmas:
    """Extract all ``# prodb-lint:`` directives from *source*."""
    pragmas = Pragmas()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for line, comment in comments:
        text = comment.lstrip("#").strip()
        if not text.startswith(_PREFIX):
            continue
        directive = text[len(_PREFIX):].split("--", 1)[0].strip()
        lowered = directive.lower()
        if lowered in ALIASES:
            pragmas._add(pragmas.line_disables, line, {ALIASES[lowered]})
        elif lowered.startswith("disable-file="):
            codes = _parse_codes(directive.split("=", 1)[1])
            if codes is None:
                pragmas.malformed.append((line, directive))
            else:
                pragmas._add(pragmas.file_disables, line, codes)
        elif lowered.startswith("disable="):
            codes = _parse_codes(directive.split("=", 1)[1])
            if codes is None:
                pragmas.malformed.append((line, directive))
            else:
                pragmas._add(pragmas.line_disables, line, codes)
        else:
            pragmas.malformed.append((line, directive))
    return pragmas
