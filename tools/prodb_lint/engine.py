"""The lint driver: file discovery, contexts, rule dispatch.

One :class:`LintContext` is built per file (parsed AST, parent links,
pragmas, project-relative path); every rule in
:data:`prodb_lint.rules.ALL_RULES` whose :meth:`~prodb_lint.rules.Rule.applies`
accepts the path is run over it. Project-level facts needed by rules — the
``docs/api.md`` export map for PL005 — are computed once per run and shared
through :class:`Project`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from .pragmas import Pragmas, parse_pragmas

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache", ".ruff_cache"}


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class Project:
    """Per-run shared state: the project root and lazy docs/api.md exports."""

    root: Path
    _api_exports: Optional[dict[str, set[str]]] = field(default=None, repr=False)

    def api_exports(self) -> dict[str, set[str]]:
        """``{dotted module: documented names}`` parsed from docs/api.md.

        Only ``from X import a, b`` lines inside fenced code blocks count;
        prose mentions are not machine-checked. Missing docs/api.md yields
        an empty map (PL005 then has nothing to enforce).
        """
        if self._api_exports is None:
            self._api_exports = _parse_api_docs(self.root / "docs" / "api.md")
        return self._api_exports


@dataclass
class LintContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    pragmas: Pragmas
    project: Project
    _parents: Optional[dict[ast.AST, ast.AST]] = field(default=None, repr=False)

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent links, built on first use."""
        if self._parents is None:
            self._parents = {
                child: node
                for node in ast.walk(self.tree)
                for child in ast.iter_child_nodes(node)
            }
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parents()
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=code,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _parse_api_docs(api_md: Path) -> dict[str, set[str]]:
    exports: dict[str, set[str]] = {}
    try:
        text = api_md.read_text(encoding="utf-8")
    except OSError:
        return exports
    in_fence = False
    buffer: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("```"):
            if in_fence:
                _collect_doc_imports("\n".join(buffer), exports)
                buffer = []
            in_fence = not in_fence
            continue
        if in_fence:
            buffer.append(raw)
    return exports


def _collect_doc_imports(block: str, exports: dict[str, set[str]]) -> None:
    try:
        tree = ast.parse(block)
    except SyntaxError:
        # Code fences may hold shell snippets or elided (...) examples;
        # fall back to line-by-line parsing so one bad line cannot hide
        # the rest of the block.
        for line in block.splitlines():
            if line.lstrip().startswith("from "):
                try:
                    tree = ast.parse(line.strip().rstrip(",").rstrip("("))
                except SyntaxError:
                    continue
                _collect_doc_imports_tree(tree, exports)
        return
    _collect_doc_imports_tree(tree, exports)


def _collect_doc_imports_tree(tree: ast.AST, exports: dict[str, set[str]]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            if node.module == "repro" or node.module.startswith("repro."):
                names = {alias.name for alias in node.names if alias.name != "*"}
                exports.setdefault(node.module, set()).update(names)


def find_project_root(start: Path) -> Path:
    """Walk up from *start* looking for pyproject.toml (fallback: cwd)."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path.cwd()


def discover_files(paths: Iterable[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for item in paths:
        path = Path(item)
        if path.is_file() and path.suffix == ".py":
            out.add(path.resolve())
        elif path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [
                    d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
                ]
                for name in filenames:
                    if name.endswith(".py"):
                        out.add((Path(dirpath) / name).resolve())
    return sorted(out)


def lint_file(path: Path, project: Project, select: Optional[set[str]] = None) -> list[Finding]:
    """Run every applicable rule over one file."""
    from .rules import ALL_RULES

    source = path.read_text(encoding="utf-8")
    try:
        relpath = path.resolve().relative_to(project.root).as_posix()
    except ValueError:
        relpath = path.as_posix()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Finding(
                "PL000",
                relpath,
                error.lineno or 1,
                error.offset or 0,
                f"syntax error: {error.msg}",
            )
        ]
    pragmas = parse_pragmas(source)
    ctx = LintContext(
        path=path, relpath=relpath, source=source, tree=tree,
        pragmas=pragmas, project=project,
    )
    findings = [
        Finding("PL000", relpath, line, 0, f"malformed prodb-lint pragma {text!r}: {detail}")
        for line, text, detail in pragmas.malformed
    ]
    for rule in ALL_RULES:
        if select is not None and rule.code not in select:
            continue
        if not rule.applies(relpath):
            continue
        for code, node, message in rule.check(ctx):
            first = getattr(node, "lineno", 1)
            last = getattr(node, "end_lineno", None) or first
            if not pragmas.is_disabled(code, first, last):
                findings.append(ctx.finding(code, node, message))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def lint_paths(
    paths: Iterable[str],
    root: Optional[str] = None,
    select: Optional[set[str]] = None,
) -> list[Finding]:
    """Lint files/directories; returns all findings sorted by location."""
    files = discover_files(paths)
    if not files:
        return []
    project = Project(
        root=Path(root).resolve() if root is not None else find_project_root(files[0])
    )
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, project, select))
    return findings
