"""The five prodb-lint rules.

Each rule yields ``(code, node, message)`` triples; pragma suppression and
rendering happen in :mod:`prodb_lint.engine`. Rules are deliberately
syntactic approximations — they catch the conventions the engine relies on
without whole-program analysis, and every escape hatch is an explicit,
reviewable pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

Triple = tuple[str, ast.AST, str]

#: Interned BExpr node classes that must not be constructed directly
#: outside the booleans package (PL001).
_BEXPR_CLASSES = frozenset({"BVar", "BNot", "BAnd", "BOr", "BTrue", "BFalse"})

#: Factory spellings suggested by the PL001 message.
_BEXPR_FACTORY = {
    "BVar": "bvar(...)",
    "BNot": "bnot(...)",
    "BAnd": "band(...) or BAnd.of(...)",
    "BOr": "bor(...) or BOr.of(...)",
    "BTrue": "B_TRUE",
    "BFalse": "B_FALSE",
}

#: Methods that mutate a container in place (PL002).
_MUTATING_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert", "add",
        "update", "setdefault", "pop", "popitem", "popleft", "clear",
        "remove", "discard", "move_to_end",
    }
)

#: Constructor names treated as mutable containers (PL002).
_CONTAINER_CALLS = frozenset(
    {
        "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
        "Counter", "WeakValueDictionary", "WeakKeyDictionary",
    }
)

#: Methods that never go through __init__-style construction windows.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: numpy.random constructors that are fine *when given a seed* (PL004).
_NP_SEEDED_CTORS = frozenset({"default_rng", "RandomState", "Generator", "SeedSequence"})


class Rule:
    """Base: subclasses set ``code``/``name`` and implement the hooks."""

    code = "PL000"
    name = "base"

    def applies(self, relpath: str) -> bool:
        return True

    def check(self, ctx) -> Iterator[Triple]:  # pragma: no cover - interface
        raise NotImplementedError


def _is_mutable_container_value(value: ast.AST) -> bool:
    """Literal / constructor expressions that produce a mutable container."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _CONTAINER_CALLS:
            return True
        # dataclasses.field(default_factory=dict) and friends
        if name == "field":
            for keyword in value.keywords:
                if keyword.arg == "default_factory":
                    factory = keyword.value
                    factory_name = (
                        factory.id if isinstance(factory, ast.Name) else (
                            factory.attr if isinstance(factory, ast.Attribute) else None
                        )
                    )
                    if factory_name in _CONTAINER_CALLS:
                        return True
    return False


def _is_threading_local_value(value: ast.AST, local_classes: set[str]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr == "local":
        return True  # threading.local()
    if isinstance(func, ast.Name) and func.id in local_classes:
        return True
    return False


class PL001DirectNodeConstruction(Rule):
    """Direct ``BVar(...)``-style construction outside the booleans package."""

    code = "PL001"
    name = "direct-bexpr-construction"

    def applies(self, relpath: str) -> bool:
        return not relpath.startswith("src/repro/booleans/")

    def check(self, ctx) -> Iterator[Triple]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            else:
                continue
            if name in _BEXPR_CLASSES:
                yield (
                    self.code,
                    node,
                    f"direct construction of {name}(...) bypasses the kernel "
                    f"factories; use {_BEXPR_FACTORY[name]} from repro.booleans "
                    "(or add '# prodb-lint: allow-construct' if this is a "
                    "deliberate kernel-level test)",
                )


class PL002UnguardedSharedMutation(Rule):
    """Unlocked mutation of shared mutable containers in engine/booleans.

    Tracks two families of shared state: module-level names bound to a
    mutable container at module scope, and ``self.<attr>`` containers bound
    in ``__init__`` (or as dataclass ``field(default_factory=...)``).
    A mutation — subscript store/delete, augmented subscript assignment, or
    an in-place method call like ``update``/``clear`` — must sit inside a
    ``with <something-named-lock>`` block, belong to a
    ``threading.local`` subclass, or carry ``# prodb-lint: lockfree``.
    """

    code = "PL002"
    name = "unguarded-shared-mutation"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(
            (
                "src/repro/engine/",
                "src/repro/booleans/",
                "src/repro/condition/",
                "src/repro/server/",
                "src/repro/obs/",
                "src/repro/relational/shm.py",
            )
        )

    def check(self, ctx) -> Iterator[Triple]:
        tree = ctx.tree
        local_classes = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
            and any(
                (isinstance(base, ast.Attribute) and base.attr == "local")
                or (isinstance(base, ast.Name) and base.id == "local")
                for base in node.bases
            )
        }

        module_containers: set[str] = set()
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_container_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    module_containers.add(target.id)

        # self.<attr> containers, per class.
        class_containers: dict[str, set[str]] = {}
        for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
            if cls.name in local_classes:
                continue
            attrs: set[str] = set()
            for stmt in cls.body:  # dataclass field(default_factory=...)
                if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    if isinstance(stmt.target, ast.Name) and _is_mutable_container_value(stmt.value):
                        attrs.add(stmt.target.id)
            for node in ast.walk(cls):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                if not _is_mutable_container_value(value):
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
            if attrs:
                class_containers[cls.name] = attrs

        def tracked(base: ast.AST, node: ast.AST) -> str | None:
            """The tracked name a mutation targets, or None."""
            if isinstance(base, ast.Name) and base.id in module_containers:
                return base.id
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                for ancestor in ctx.ancestors(node):
                    if isinstance(ancestor, ast.ClassDef):
                        if base.attr in class_containers.get(ancestor.name, ()):
                            return f"self.{base.attr}"
                        return None
            return None

        def guarded(node: ast.AST) -> bool:
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, ast.FunctionDef) and ancestor.name in _INIT_METHODS:
                    return True
                if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                    for item in ancestor.items:
                        for sub in ast.walk(item.context_expr):
                            text = None
                            if isinstance(sub, ast.Attribute):
                                text = sub.attr
                            elif isinstance(sub, ast.Name):
                                text = sub.id
                            if text is not None and "lock" in text.lower():
                                return True
            return False

        def emit(node: ast.AST, name: str, what: str) -> Triple:
            return (
                self.code,
                node,
                f"{what} of shared container {name!r} outside a 'with <lock>' "
                "block; guard it, make it threading.local, or annotate "
                "'# prodb-lint: lockfree' with a justifying comment",
            )

        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        name = tracked(target.value, node)
                        if name is not None and not guarded(node):
                            yield emit(node, name, "subscript assignment")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        name = tracked(target.value, node)
                        if name is not None and not guarded(node):
                            yield emit(node, name, "subscript deletion")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
                    name = tracked(func.value, node)
                    if name is not None and not guarded(node):
                        yield emit(node, name, f".{func.attr}() call")


class PL003FloatLiteralEquality(Rule):
    """``==`` / ``!=`` against a float literal."""

    code = "PL003"
    name = "float-literal-equality"

    def check(self, ctx) -> Iterator[Triple]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = next(
                    (
                        operand
                        for operand in (left, right)
                        if isinstance(operand, ast.Constant)
                        and type(operand.value) is float
                    ),
                    None,
                )
                if literal is not None:
                    yield (
                        self.code,
                        node,
                        f"exact float comparison against {literal.value!r}; "
                        "use math.isclose(...) for tolerant comparison or "
                        "annotate '# prodb-lint: exact' when exact IEEE "
                        "semantics are intended (e.g. division guards)",
                    )
                    break


class PL004UnseededRandomness(Rule):
    """Unseeded ``random`` / ``numpy.random`` use in reproducibility-critical files."""

    code = "PL004"
    name = "unseeded-randomness"

    _FILES = frozenset({"src/repro/wmc/sampling.py", "src/repro/wmc/karp_luby.py"})

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("benchmarks/") or relpath in self._FILES

    def check(self, ctx) -> Iterator[Triple]:
        random_aliases: set[str] = set()
        numpy_aliases: set[str] = set()
        numpy_random_aliases: set[str] = set()
        from_random: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "random":
                        random_aliases.add(bound)
                    elif alias.name == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        numpy_random_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module in ("random", "numpy.random"):
                    from_random.update(
                        (alias.asname or alias.name) for alias in node.names
                    )

        def has_args(call: ast.Call) -> bool:
            return bool(call.args or call.keywords)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # random.<fn>(...) / rnd.<fn>(...)
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                base = func.value.id
                if base in random_aliases:
                    if func.attr in {"Random", "SystemRandom"}:
                        if func.attr == "Random" and not has_args(node):
                            yield (
                                self.code,
                                node,
                                "random.Random() without a seed is not "
                                "reproducible; pass an explicit seed or rng",
                            )
                    else:
                        yield (
                            self.code,
                            node,
                            f"module-level random.{func.attr}() uses the "
                            "process-global unseeded generator; use a local "
                            "random.Random(seed)",
                        )
                    continue
            # numpy.random.<fn>(...) via np.random.<fn>
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.attr == "random"
                and func.value.value.id in numpy_aliases
            ) or (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in numpy_random_aliases
            ):
                if func.attr in _NP_SEEDED_CTORS:
                    if not has_args(node):
                        yield (
                            self.code,
                            node,
                            f"numpy.random.{func.attr}() without a seed is "
                            "not reproducible; pass an explicit seed",
                        )
                else:
                    yield (
                        self.code,
                        node,
                        f"numpy.random.{func.attr}() uses the global "
                        "unseeded generator; use numpy.random.default_rng(seed)",
                    )
                continue
            # names imported `from random import ...`
            if isinstance(func, ast.Name) and func.id in from_random:
                if func.id in {"Random", *_NP_SEEDED_CTORS}:
                    if not has_args(node):
                        yield (
                            self.code,
                            node,
                            f"{func.id}() without a seed is not reproducible; "
                            "pass an explicit seed",
                        )
                elif func.id != "SystemRandom":
                    yield (
                        self.code,
                        node,
                        f"{func.id}() drawn from the unseeded global "
                        "generator; use a local seeded generator",
                    )


class PL005AllExportsMatchDocs(Rule):
    """Modules documented in docs/api.md must export the documented names."""

    code = "PL005"
    name = "all-exports-match-docs"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and relpath.endswith(".py")

    @staticmethod
    def _module_of(relpath: str) -> str:
        dotted = relpath[len("src/"):-len(".py")].replace("/", ".")
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        return dotted

    def check(self, ctx) -> Iterator[Triple]:
        documented = ctx.project.api_exports().get(self._module_of(ctx.relpath))
        if not documented:
            return
        all_node: ast.AST | None = None
        exported: set[str] = set()
        for node in ast.walk(ctx.tree):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                target = node.target
            if not (isinstance(target, ast.Name) and target.id == "__all__"):
                continue
            all_node = node
            value = getattr(node, "value", None)
            if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                exported.update(
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant) and isinstance(element.value, str)
                )
        if all_node is None:
            yield (
                self.code,
                ctx.tree,
                "module is documented in docs/api.md but defines no __all__ "
                f"(documented names: {', '.join(sorted(documented))})",
            )
            return
        missing = sorted(documented - exported)
        if missing:
            yield (
                self.code,
                all_node,
                "__all__ is missing names documented in docs/api.md: "
                + ", ".join(missing),
            )


ALL_RULES: tuple[Rule, ...] = (
    PL001DirectNodeConstruction(),
    PL002UnguardedSharedMutation(),
    PL003FloatLiteralEquality(),
    PL004UnseededRandomness(),
    PL005AllExportsMatchDocs(),
)
