"""Command line front end: ``python -m prodb_lint src/ benchmarks/ tests/``."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .engine import lint_paths
from .rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prodb_lint",
        description="Repo-specific static analysis for the prodb engine.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "benchmarks", "tests"],
        help="files or directories to lint (default: src benchmarks tests)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--root", metavar="DIR",
        help="project root (default: nearest pyproject.toml above the first path)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.code}  {rule.name:32} {doc}")
        return 0
    select = (
        {code.strip().upper() for code in args.select.split(",") if code.strip()}
        if args.select
        else None
    )
    findings = lint_paths(args.paths, root=args.root, select=select)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding{'s' if len(findings) != 1 else ''}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
